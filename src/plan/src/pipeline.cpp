#include "msoc/plan/pipeline.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "msoc/common/error.hpp"
#include "msoc/common/logging.hpp"
#include "msoc/common/parallel.hpp"
#include "msoc/soc/digest.hpp"

namespace msoc::plan {

// --- Stage 1: partition enumeration. ---

PartitionSpace::PartitionSpace(const soc::Soc& soc,
                               const CostWeights& weights,
                               const mswrap::WrapperAreaModel& area_model,
                               const mswrap::SharingPolicy& policy,
                               const mswrap::EnumerationOptions& enumeration)
    : all_share(std::vector<std::vector<std::size_t>>{
          [&soc] {
            std::vector<std::size_t> everyone(soc.analog_count());
            for (std::size_t i = 0; i < everyone.size(); ++i) everyone[i] = i;
            return everyone;
          }()}) {
  std::vector<mswrap::SharingEvaluation> all = mswrap::evaluate_combinations(
      soc.analog_cores(), area_model, policy, enumeration);
  for (mswrap::SharingEvaluation& e : all) {
    if (!e.feasible) {
      log_debug("combination ", e.label, " dropped: sharing policy");
      continue;
    }
    PartitionCell cell;
    cell.prelim = weights.time * e.analog_lb_normalized +
                  weights.area * e.area_cost;
    cell.analog_lb = e.analog_lb_cycles;
    cell.key_full =
        partition_key(soc.analog_cores(), e.partition, /*powered=*/true);
    cell.key_packing =
        partition_key(soc.analog_cores(), e.partition, /*powered=*/false);
    cell.evaluation = std::move(e);
    cells.push_back(std::move(cell));
  }
  require(!cells.empty(), "no feasible sharing combination");

  all_share_key_full =
      partition_key(soc.analog_cores(), all_share, /*powered=*/true);
  all_share_key_packing =
      partition_key(soc.analog_cores(), all_share, /*powered=*/false);

  // Same grouping and representative choice as optimize_cost_heuristic:
  // shape groups in sorted-shape order, members in enumeration order,
  // representative = first Eq. 3 minimum.
  std::map<std::vector<std::size_t>, std::vector<std::size_t>> by_shape;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    by_shape[cells[i].evaluation.partition.shape()].push_back(i);
  }
  for (const auto& [shape, members] : by_shape) {
    PartitionGroup group;
    group.members = members;
    double best_prelim = std::numeric_limits<double>::infinity();
    for (const std::size_t index : members) {
      if (cells[index].prelim < best_prelim) {
        best_prelim = cells[index].prelim;
        group.representative = index;
      }
    }
    groups.push_back(std::move(group));
  }
}

std::vector<bool> PartitionSpace::classify_clean(
    const soc::Soc& soc, const soc::DigestDelta& delta,
    bool packing_flavor) const {
  const soc::DigestSetDelta& digital =
      packing_flavor ? delta.digital_packing : delta.digital;
  const soc::DigestSetDelta& analog =
      packing_flavor ? delta.analog_packing : delta.analog;

  // Every partition's makespan depends on the full digital test load
  // (digital and analog tests pack onto the same TAM), so ANY digital
  // change — edit, add, remove — dirties every cell.  all_clean also
  // rejects analog add/remove cheaply; without it the per-member check
  // below would still be sound (keys over different core counts can
  // never collide), but an all-dirty verdict is the honest one.
  const bool context_clean = digital.all_clean() &&
                             analog.dirty_old.size() ==
                                 analog.dirty_new.size();
  std::vector<bool> clean(cells.size(), false);
  if (!context_clean) return clean;

  std::vector<std::uint64_t> member_digest;
  member_digest.reserve(soc.analog_count());
  for (const soc::AnalogCore& core : soc.analog_cores()) {
    member_digest.push_back(packing_flavor ? soc::packing_core_digest(core)
                                           : soc::core_digest(core));
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    bool cell_clean = true;
    for (const std::vector<std::size_t>& group :
         cells[i].evaluation.partition.groups()) {
      for (const std::size_t index : group) {
        if (analog.is_dirty(member_digest[index])) {
          cell_clean = false;
          break;
        }
      }
      if (!cell_clean) break;
    }
    clean[i] = cell_clean;
  }
  return clean;
}

// --- Stage 2: digest-keyed makespan resolution. ---

PartitionEvaluator::PartitionEvaluator(
    const PartitionSpace& space, ResultCache* cache,
    const std::string& digest, const std::string& baseline_digest,
    const std::string& fingerprint, int width, double max_power,
    Cycles window_cycles, double window_limit, bool trust_cache,
    const std::vector<bool>* clean, int jobs)
    : space_(space),
      cache_(cache),
      digest_(digest),
      baseline_digest_(baseline_digest),
      fingerprint_(fingerprint),
      width_(width),
      max_power_(max_power),
      window_cycles_(window_cycles),
      window_limit_(window_limit),
      trust_cache_(trust_cache),
      clean_(clean),
      jobs_(jobs),
      time_of_(space.cells.size()) {}

std::optional<Cycles> PartitionEvaluator::lookup(const std::string& key,
                                                 const std::string& label,
                                                 bool cell_clean) {
  if (cache_ == nullptr || !trust_cache_) return std::nullopt;
  ResultCache::EntryKey entry{width_, max_power_, fingerprint_, key,
                              window_cycles_, window_limit_};
  if (std::optional<Cycles> hit = cache_->lookup(digest_, entry)) {
    ++cache_hits_;
    return hit;
  }
  if (baseline_digest_.empty() || !cell_clean) return std::nullopt;
  if (std::optional<Cycles> hit = cache_->lookup(baseline_digest_, entry)) {
    // The splice: a baseline result valid for this revision is
    // re-recorded under the CURRENT digest, so one flush materializes
    // a complete up-to-date store.
    cache_->record(digest_, entry, label, *hit);
    ++reused_;
    return hit;
  }
  return std::nullopt;
}

Cycles PartitionEvaluator::begin_cell(
    const std::function<Cycles()>& pack_t_max, const std::string& label,
    bool* from_store) {
  // The all-share partition contains every analog core, so its entry
  // may be reused exactly when every cell's may (each cell also covers
  // all cores — sharing partitions cover the whole core set).
  const bool all_share_clean =
      clean_ != nullptr && !clean_->empty() &&
      std::all_of(clean_->begin(), clean_->end(), [](bool c) { return c; });
  const std::string& key =
      space_.all_share_key_for(max_power_, window_cycles_ > 0);
  // t_max hits are deliberately not counted in cache_hits/reused — the
  // baseline is the normalization constant, not a combination
  // evaluation (matches the paper's evaluation counting).
  const int hits = cache_hits_;
  const int reused = reused_;
  std::optional<Cycles> stored = lookup(key, label, all_share_clean);
  cache_hits_ = hits;
  reused_ = reused;
  if (stored.has_value()) {
    // Loading validated test_time >= 1, so the baseline is usable as a
    // divisor; whether it is *correct* is re-checked against the
    // packer the moment a model gets built (see resolve()).
    t_max_ = *stored;
    t_max_from_store_ = true;
  } else {
    t_max_ = pack_t_max();
    t_max_from_store_ = false;
    if (cache_ != nullptr) {
      cache_->record(digest_,
                     ResultCache::EntryKey{width_, max_power_, fingerprint_,
                                           key, window_cycles_,
                                           window_limit_},
                     label, t_max_);
    }
  }
  if (from_store != nullptr) *from_store = t_max_from_store_;
  return t_max_;
}

void PartitionEvaluator::resolve(
    const std::vector<std::size_t>& indices,
    const std::function<CostModel&()>& model) {
  std::vector<std::size_t> misses;
  for (const std::size_t index : indices) {
    if (time_of_[index].has_value()) continue;
    const PartitionCell& cell = space_.cells[index];
    const bool cell_clean = clean_ != nullptr && (*clean_)[index];
    const std::optional<Cycles> hit =
        lookup(cell.key_for(max_power_, window_cycles_ > 0),
               cell.evaluation.label, cell_clean);
    // A stored time above the baseline contradicts the packer's
    // serialized-fallback guarantee: the store is stale for this
    // width, so stop trusting it and recompute.
    if (hit.has_value() && *hit > t_max_) throw StaleCacheError{};
    if (hit.has_value()) {
      time_of_[index] = *hit;
      continue;
    }
    misses.push_back(index);
  }
  if (misses.empty()) return;
  CostModel& the_model = model();
  if (t_max_from_store_ && the_model.t_max() != t_max_) {
    // The stored baseline disagrees with a fresh pack: every stored
    // value for this width is suspect, including ones already consumed
    // by representative/elimination decisions — restart the width
    // without the stores.
    throw StaleCacheError{};
  }
  std::vector<Cycles> packed(misses.size());
  parallel_for(misses.size(), jobs_, [&](std::size_t i) {
    packed[i] =
        the_model.evaluate(space_.cells[misses[i]].evaluation.partition)
            .test_time;
  });
  for (std::size_t i = 0; i < misses.size(); ++i) {
    time_of_[misses[i]] = packed[i];
    if (cache_ != nullptr) {
      const PartitionCell& cell = space_.cells[misses[i]];
      cache_->record(
          digest_,
          ResultCache::EntryKey{width_, max_power_, fingerprint_,
                                cell.key_for(max_power_, window_cycles_ > 0),
                                window_cycles_, window_limit_},
          cell.evaluation.label, packed[i]);
    }
  }
}

}  // namespace msoc::plan

#include "msoc/plan/frontier.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>
#include <sstream>

#include "msoc/common/csv.hpp"
#include "msoc/common/error.hpp"
#include "msoc/common/format.hpp"
#include "msoc/common/json.hpp"
#include "msoc/common/logging.hpp"
#include "msoc/soc/digest.hpp"

namespace msoc::plan {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

/// The message schedule_soc raises for an over-narrow TAM; the engine
/// pre-checks so fully-cached widths never need a packer run to learn
/// they are infeasible, but must report the identical text.
constexpr const char* kTooNarrow =
    "analog wrapper needs more TAM wires than the SOC has";

/// Likewise for a power budget no schedule can satisfy (a single test
/// hotter than the whole budget).
constexpr const char* kTooHot = "test power exceeds the SOC power budget";

int count_dirty(const std::vector<bool>& clean) {
  return static_cast<int>(
      std::count(clean.begin(), clean.end(), false));
}

}  // namespace

FrontierEngine::FrontierEngine(const soc::Soc& soc, FrontierOptions options)
    : soc_(soc), options_(std::move(options)) {
  require(!options_.widths.empty(), "frontier needs at least one TAM width");
  require(options_.epsilon >= 0.0, "epsilon must be non-negative");
  options_.weights.validate();
  require(soc_.analog_count() >= 1,
          "mixed-signal planning needs at least one analog core");

  widths_ = options_.widths;
  std::sort(widths_.begin(), widths_.end());
  widths_.erase(std::unique(widths_.begin(), widths_.end()), widths_.end());

  // Resolve the power ladder against the SOC, collapse duplicates, and
  // order the rungs: unconstrained first, then descending (tightening)
  // budgets.  With the default one-inherit-rung ladder on an
  // unconstrained SOC this is exactly the pre-power single solve.
  require(!options_.max_powers.empty(),
          "frontier needs at least one power budget");
  for (const double budget : options_.max_powers) {
    // NaN slips through every sign test (NaN < 0.0 is false) and would
    // poison the cache's EntryKey ordering; infinities serialize badly.
    require(std::isfinite(budget) || budget < 0.0,
            "power budgets must be finite (or negative = inherit)");
    powers_.push_back(budget < 0.0 ? soc_.max_power() : budget);
  }
  std::sort(powers_.begin(), powers_.end(), [](double a, double b) {
    if ((a == 0.0) != (b == 0.0)) return a == 0.0;  // unconstrained first
    return a > b;                                   // then tightening
  });
  powers_.erase(std::unique(powers_.begin(), powers_.end()), powers_.end());

  // One sliding-window budget per run (packing options resolved against
  // the SOC, like each max_power rung), crossed with the power ladder.
  window_ = tam::effective_power_window(soc_, options_.packing);

  digest_ = soc::digest_hex(soc_);
  fingerprint_ = packing_fingerprint(options_.packing);
  names_ = mswrap::core_names(soc_.analog_cores());
  for (const soc::AnalogCore& core : soc_.analog_cores()) {
    max_analog_width_ = std::max(max_analog_width_, core.tam_width());
  }
  peak_test_power_ = soc_.peak_test_power();

  // --- Stage 1: width-independent combination work, done exactly
  // once (enumeration, Eq. 3 prelims, shape groups, cache keys). ---
  space_.emplace(soc_, options_.weights, options_.area_model,
                 options_.policy, options_.enumeration);

  // Invalid widths (< 1) become per-width error points, like widths
  // below the analog minimum, so tables are sized by the widest VALID
  // budget (and at least 1 so a fully-degenerate ladder still builds).
  const int table_width = std::max(widths_.back(), 1);
  if (options_.pareto_tables != nullptr) {
    require(options_.pareto_tables->max_width >= table_width &&
                options_.pareto_tables->by_core.size() ==
                    soc_.digital_count(),
            "borrowed pareto_tables do not cover this SOC/width ladder");
    pareto_tables_ = options_.pareto_tables;
  } else {
    own_pareto_tables_ = tam::compute_pareto_tables(soc_, table_width);
    pareto_tables_ = &own_pareto_tables_;
  }

  if (options_.cache != nullptr) {
    // Opening with the SOC (not just its name) pins the store's digest
    // inventory, so the flushed file can seed a future replan().
    options_.cache->open(digest_, soc_);
  }
}

FrontierPoint FrontierEngine::solve_point(int width, double max_power) {
  try {
    return solve_point_attempt(width, max_power, /*trust_cache=*/true);
  } catch (const StaleCacheError&) {
    // A parseable entry contradicted the packer (stale or tampered
    // store).  Per the cache contract this must never fail the run:
    // re-solve the cell ignoring stored values; the fresh results are
    // recorded and overwrite the stale cells on flush.
    log_warn("cache entries for width ", width, " of ", digest_,
             " are stale; recomputing");
    return solve_point_attempt(width, max_power, /*trust_cache=*/false);
  }
}

FrontierPoint FrontierEngine::solve_point_attempt(int width,
                                                  double max_power,
                                                  bool trust_cache) {
  const Clock::time_point started = Clock::now();
  FrontierPoint point;
  point.tam_width = width;
  point.max_power = max_power;
  if (window_.active()) {
    point.window_cycles = window_.cycles;
    point.window_limit = window_.limit;
  }
  point.total_combinations = static_cast<int>(space_->cells.size());

  if (width < 1) {
    point.error = "TAM width must be >= 1";
    point.wall_ms = elapsed_ms(started);
    return point;
  }
  if (max_analog_width_ > width) {
    point.error = kTooNarrow;
    point.wall_ms = elapsed_ms(started);
    return point;
  }
  if (max_power > 0.0 && peak_test_power_ > max_power) {
    point.error = kTooHot;
    point.wall_ms = elapsed_ms(started);
    return point;
  }

  std::optional<CostModel> model;
  const auto ensure_model = [&]() -> CostModel& {
    if (!model.has_value()) {
      PlanningProblem problem;
      problem.soc = &soc_;
      problem.tam_width = width;
      problem.weights = options_.weights;
      problem.area_model = options_.area_model;
      problem.policy = options_.policy;
      problem.enumeration = options_.enumeration;
      problem.packing = options_.packing;
      problem.packing.pareto_hint = pareto_tables_;
      // Already resolved against the SOC; never the inherit sentinel.
      problem.packing.max_power = max_power;
      problem.packing.window_cycles = window_.cycles;
      problem.packing.window_limit = window_.active() ? window_.limit : 0.0;
      model.emplace(problem);
    }
    return *model;
  };

  // --- Stage 2: digest-keyed makespan resolution for this cell.
  // When replanning, the budget class picks which digest flavor's
  // reuse permissions apply: constrained packs observe power
  // annotations, unconstrained ones provably cannot.
  const std::vector<bool>* clean = nullptr;
  if (!replan_baseline_.empty()) {
    clean = max_power > 0.0 || window_.active() ? &*clean_full_
                                                : &*clean_packing_;
  }
  PartitionEvaluator evaluator(
      *space_, options_.cache, digest_, replan_baseline_, fingerprint_,
      width, max_power, window_.cycles,
      window_.active() ? window_.limit : 0.0, trust_cache, clean,
      options_.jobs);

  // T_max: the all-share baseline every cost normalizes by.
  bool t_max_from_store = false;
  const Cycles t_max = evaluator.begin_cell(
      [&]() -> Cycles { return ensure_model().t_max(); },
      space_->all_share.to_string(names_, true), &t_max_from_store);

  // Uniform cost construction for stored and freshly-packed times —
  // the exact expressions CostModel::evaluate uses, so both paths (and
  // therefore frontier vs per-width optimizer runs) are bit-identical.
  const auto make_cost = [&](const PartitionCell& cell,
                             Cycles test_time) -> CombinationCost {
    CombinationCost cost;
    cost.partition = cell.evaluation.partition;
    cost.label = cell.evaluation.label;
    cost.test_time = test_time;
    check_invariant(cost.test_time <= t_max,
                    "partition " + cost.label +
                        " packed worse than the all-share baseline");
    cost.c_time = 100.0 * static_cast<double>(test_time) /
                  static_cast<double>(t_max);
    cost.c_area = cell.evaluation.area_cost;
    cost.total = options_.weights.time * cost.c_time +
                 options_.weights.area * cost.c_area;
    return cost;
  };

  // Pruning decisions are made BEFORE each resolve() fan-out, against
  // thresholds fixed serially, so jobs never changes results or
  // counts.
  const auto resolve = [&](const std::vector<std::size_t>& indices) {
    evaluator.resolve(indices, [&]() -> CostModel& {
      return ensure_model();
    });
  };

  bool have_best = false;
  const auto consider = [&](const CombinationCost& cost) {
    if (!have_best || cost.total < point.best.total) {
      point.best = cost;
      have_best = true;
    }
  };

  const std::vector<PartitionCell>& cells = space_->cells;
  if (options_.exhaustive) {
    std::vector<std::size_t> everything(cells.size());
    for (std::size_t i = 0; i < everything.size(); ++i) everything[i] = i;
    resolve(everything);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      consider(make_cost(cells[i], *evaluator.time(i)));
    }
  } else {
    // --- Fig. 3 lines 9-13: evaluate group representatives. ---
    std::vector<std::size_t> reps;
    reps.reserve(space_->groups.size());
    for (const PartitionGroup& group : space_->groups) {
      reps.push_back(group.representative);
    }
    resolve(reps);
    std::vector<double> rep_total(space_->groups.size());
    double min_rep = std::numeric_limits<double>::infinity();
    for (std::size_t g = 0; g < space_->groups.size(); ++g) {
      const std::size_t rep = space_->groups[g].representative;
      rep_total[g] = make_cost(cells[rep], *evaluator.time(rep)).total;
      min_rep = std::min(min_rep, rep_total[g]);
    }

    // --- Lines 14-17: eliminate groups beyond epsilon of the winner.
    std::vector<bool> eliminated(space_->groups.size());
    for (std::size_t g = 0; g < space_->groups.size(); ++g) {
      eliminated[g] = rep_total[g] > min_rep + options_.epsilon;
    }

    // --- Lines 18-19, with the frontier engine's extra prune: a
    // surviving member whose cost lower bound strictly exceeds the
    // cheapest representative can neither win nor tie (selection is by
    // strict <), so skipping its TAM run cannot change the result.
    const Cycles digital_lb =
        tam::digital_lower_bound(soc_, width, pareto_tables_);
    std::vector<bool> pruned(cells.size());
    std::vector<std::size_t> survivors;
    for (std::size_t g = 0; g < space_->groups.size(); ++g) {
      if (eliminated[g]) continue;
      for (const std::size_t index : space_->groups[g].members) {
        if (evaluator.time(index).has_value()) continue;  // representative
        const Cycles time_lb = std::max(cells[index].analog_lb, digital_lb);
        const double total_lb =
            options_.weights.time * (100.0 * static_cast<double>(time_lb) /
                                     static_cast<double>(t_max)) +
            options_.weights.area * cells[index].evaluation.area_cost;
        if (total_lb > min_rep) {
          pruned[index] = true;
          ++point.pruned;
          continue;
        }
        survivors.push_back(index);
      }
    }
    resolve(survivors);

    // Reduce in exactly optimize_cost_heuristic's order: groups in
    // shape order; an eliminated group's representative still
    // competes; surviving members in enumeration order.
    for (std::size_t g = 0; g < space_->groups.size(); ++g) {
      const std::size_t rep = space_->groups[g].representative;
      if (eliminated[g]) {
        consider(make_cost(cells[rep], *evaluator.time(rep)));
        continue;
      }
      for (const std::size_t index : space_->groups[g].members) {
        if (pruned[index]) continue;
        consider(make_cost(cells[index], *evaluator.time(index)));
      }
    }
  }

  point.t_max = t_max;
  point.evaluations = model.has_value() ? model->tam_runs() : 0;
  point.cache_hits = evaluator.cache_hits();
  point.reused = evaluator.reused();
  point.wall_ms = elapsed_ms(started);
  return point;
}

FrontierResult FrontierEngine::run_grid() {
  const Clock::time_point started = Clock::now();
  FrontierResult result;
  result.soc_name = soc_.name();
  result.digest = digest_;
  result.algorithm = options_.exhaustive ? "exhaustive" : "cost_optimizer";
  result.w_time = options_.weights.time;

  for (const double max_power : powers_) {
    const std::size_t rung_begin = result.points.size();
    for (const int width : widths_) {
      FrontierPoint point;
      try {
        point = solve_point(width, max_power);
      } catch (const InfeasibleError& e) {
        point.tam_width = width;
        point.max_power = max_power;
        if (window_.active()) {
          point.window_cycles = window_.cycles;
          point.window_limit = window_.limit;
        }
        point.total_combinations = static_cast<int>(space_->cells.size());
        point.error = e.what();
      }
      result.evaluations += point.evaluations;
      result.cache_hits += point.cache_hits;
      result.reused += point.reused;
      result.pruned += point.pruned;
      result.points.push_back(std::move(point));
    }

    // Monotonicity and Pareto membership over this rung's feasible
    // points: every budget's width curve must be sane on its own.
    bool have_min = false;
    Cycles running_min = 0;
    for (std::size_t i = rung_begin; i < result.points.size(); ++i) {
      FrontierPoint& point = result.points[i];
      if (!point.ok()) continue;
      if (have_min && point.best.test_time > running_min) {
        result.time_monotone = false;
      }
      point.pareto = !have_min || point.best.test_time < running_min;
      if (!have_min || point.best.test_time < running_min) {
        running_min = point.best.test_time;
        have_min = true;
      }
    }
  }

  result.wall_ms = elapsed_ms(started);
  return result;
}

FrontierResult FrontierEngine::run() {
  replan_baseline_.clear();
  clean_full_.reset();
  clean_packing_.reset();
  return run_grid();
}

FrontierResult FrontierEngine::replan(const std::string& baseline_digest) {
  ResultCache* cache = options_.cache;
  if (cache == nullptr) {
    log_warn("replan from ", baseline_digest,
             " requested without a result cache; planning cold");
    return run();
  }
  cache->open(baseline_digest);
  const std::optional<soc::DigestInventory> baseline =
      cache->inventory(baseline_digest);
  if (!baseline.has_value()) {
    log_warn("baseline store ", baseline_digest,
             " has no digest inventory (missing file or pre-v3 schema); "
             "planning cold");
    return run();
  }

  const soc::DigestDelta delta =
      soc::diff(*baseline, soc::digest_inventory(soc_));
  replan_baseline_ = baseline_digest;
  clean_full_ = space_->classify_clean(soc_, delta, /*packing_flavor=*/false);
  clean_packing_ =
      space_->classify_clean(soc_, delta, /*packing_flavor=*/true);

  FrontierResult result = run_grid();
  result.replanned_from = baseline_digest;
  // Report the dirty count of the worst rung actually solved: a
  // constrained rung keys on full digests, an unconstrained one on the
  // power-stripped flavor.
  const int dirty_full = count_dirty(*clean_full_);
  const int dirty_packing = count_dirty(*clean_packing_);
  for (const double max_power : powers_) {
    result.dirty_partitions = std::max(
        result.dirty_partitions,
        max_power > 0.0 || window_.active() ? dirty_full : dirty_packing);
  }

  replan_baseline_.clear();
  clean_full_.reset();
  clean_packing_.reset();
  return result;
}

namespace {

/// True when any point ran under a finite power budget: the signal
/// that switches serializers to the v2 schemas.  All-unconstrained
/// results keep emitting the v1 documents byte-for-byte.
bool any_power_constrained(const std::vector<FrontierPoint>& points) {
  return std::any_of(points.begin(), points.end(),
                     [](const FrontierPoint& p) { return p.max_power > 0.0; });
}

/// True when any point ran under a sliding-window budget: switches the
/// serializers to v4 and emits the per-point window fields.
bool any_windowed(const std::vector<FrontierPoint>& points) {
  return std::any_of(points.begin(), points.end(), [](const FrontierPoint& p) {
    return p.window_cycles > 0;
  });
}

}  // namespace

std::string FrontierResult::to_csv() const {
  const bool constrained = any_power_constrained(points);
  const bool windowed = any_windowed(points);
  const bool replan = !replanned_from.empty();
  std::ostringstream out;
  std::vector<std::string> header = {"soc", "tam_width", "w_time",
                                     "algorithm", "best_label", "best_total",
                                     "c_time", "c_area", "test_time",
                                     "t_max", "evaluations",
                                     "total_combinations", "cache_hits",
                                     "pruned", "pareto", "wall_ms", "error"};
  if (replan) header.insert(header.begin() + 14, "reused");
  if (windowed) {
    header.insert(header.begin() + 2, {"window_cycles", "window_limit"});
  }
  if (constrained) header.insert(header.begin() + 2, "max_power");
  CsvWriter csv(out, header);
  for (const FrontierPoint& p : points) {
    std::vector<std::string> row = {
        soc_name, std::to_string(p.tam_width),
        round_trip_double(w_time), algorithm, p.best.label,
        round_trip_double(p.best.total), round_trip_double(p.best.c_time),
        round_trip_double(p.best.c_area), std::to_string(p.best.test_time),
        std::to_string(p.t_max), std::to_string(p.evaluations),
        std::to_string(p.total_combinations),
        std::to_string(p.cache_hits), std::to_string(p.pruned),
        p.pareto ? "1" : "0", round_trip_double(p.wall_ms), p.error};
    if (replan) row.insert(row.begin() + 14, std::to_string(p.reused));
    if (windowed) {
      row.insert(row.begin() + 2,
                 {std::to_string(p.window_cycles),
                  round_trip_double(p.window_limit)});
    }
    if (constrained) {
      row.insert(row.begin() + 2, round_trip_double(p.max_power));
    }
    csv.write_row(row);
  }
  return out.str();
}

std::string FrontierResult::to_json() const {
  const bool constrained = any_power_constrained(points);
  const bool windowed = any_windowed(points);
  const bool replan = !replanned_from.empty();
  const char* schema =
      windowed ? "v4" : (replan ? "v3" : (constrained ? "v2" : "v1"));
  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": \"msoc-frontier-" << schema << "\",\n"
     << "  \"soc\": \"" << json_escape(soc_name) << "\",\n"
     << "  \"digest\": \"" << json_escape(digest) << "\",\n";
  if (replan) {
    os << "  \"replanned_from\": \"" << json_escape(replanned_from)
       << "\",\n"
       << "  \"reused\": " << reused << ",\n"
       << "  \"dirty_partitions\": " << dirty_partitions << ",\n";
  }
  os << "  \"algorithm\": \"" << json_escape(algorithm) << "\",\n"
     << "  \"w_time\": " << round_trip_double(w_time) << ",\n"
     << "  \"evaluations\": " << evaluations << ",\n"
     << "  \"cache_hits\": " << cache_hits << ",\n"
     << "  \"pruned\": " << pruned << ",\n"
     << "  \"time_monotone\": " << (time_monotone ? "true" : "false")
     << ",\n"
     << "  \"wall_ms\": " << round_trip_double(wall_ms) << ",\n"
     << "  \"points\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const FrontierPoint& p = points[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"tam_width\": " << p.tam_width << ", ";
    if (constrained) {
      os << "\"max_power\": " << round_trip_double(p.max_power) << ", ";
    }
    if (windowed) {
      os << "\"window_cycles\": " << p.window_cycles << ", "
         << "\"window_limit\": " << round_trip_double(p.window_limit)
         << ", ";
    }
    os << "\"wall_ms\": " << round_trip_double(p.wall_ms) << ", ";
    if (!p.ok()) {
      os << "\"error\": \"" << json_escape(p.error) << "\"}";
      continue;
    }
    os << "\"best\": {\"label\": \"" << json_escape(p.best.label) << "\", "
       << "\"total\": " << round_trip_double(p.best.total) << ", "
       << "\"c_time\": " << round_trip_double(p.best.c_time) << ", "
       << "\"c_area\": " << round_trip_double(p.best.c_area) << ", "
       << "\"test_time\": " << p.best.test_time << ", "
       << "\"t_max\": " << p.t_max << "}, "
       << "\"evaluations\": " << p.evaluations << ", "
       << "\"total_combinations\": " << p.total_combinations << ", "
       << "\"cache_hits\": " << p.cache_hits << ", ";
    if (replan) os << "\"reused\": " << p.reused << ", ";
    os << "\"pruned\": " << p.pruned << ", "
       << "\"pareto\": " << (p.pareto ? "true" : "false") << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace msoc::plan

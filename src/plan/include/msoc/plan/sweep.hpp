#pragma once
// Batch plan-evaluation sweeps: one result row per {SOC x TAM width x
// cost weights} case, exportable as CSV and as machine-readable JSON
// (schema "msoc-sweep-v1", documented in docs/formats.md).  Each
// (SOC, weight) pair routes through one plan::FrontierEngine walking
// every width, so enumeration, Eq. 3 preliminaries and Pareto
// staircases are shared across widths, and a cache_dir lets repeated
// sweeps skip solved cells entirely.  This is the ITC'02-style
// multi-scenario harness the CLI's --sweep flag and the
// bench/sweep_perf driver drive on every commit.

#include <string>
#include <vector>

#include "msoc/common/units.hpp"
#include "msoc/plan/optimizer.hpp"
#include "msoc/soc/soc.hpp"

namespace msoc::plan {

class ResultCache;

/// What to sweep.  SOCs are owned by value so configs built from the
/// embedded benchmarks or from loaded .soc files are self-contained.
struct SweepConfig {
  std::vector<soc::Soc> socs;
  std::vector<int> tam_widths = {16, 24, 32, 48, 64};
  /// Power-budget ladder, resolved per SOC like
  /// tam::PackingOptions::max_power (< 0 = inherit Soc::max_power, 0 =
  /// unconstrained, > 0 explicit).  The default single inherit rung
  /// reproduces the pre-power sweep exactly on undeclared SOCs.
  std::vector<double> max_powers = {-1.0};
  /// Sliding-window budget, resolved per SOC like
  /// tam::PackingOptions::window_limit (< 0 = inherit
  /// Soc::power_window, 0 = unwindowed, > 0 explicit with
  /// window_cycles > 0).  One window per sweep, crossed with the power
  /// ladder; the default inherit rung reproduces the pre-window sweep
  /// exactly on unwindowed SOCs.
  double window_limit = -1.0;
  Cycles window_cycles = 0;
  std::vector<double> time_weights = {0.25, 0.5, 0.75};
  bool exhaustive = false;  ///< Cost_Optimizer when false.
  double epsilon = 0.0;     ///< Heuristic elimination slack.
  /// Total worker threads (<= 0 = hardware concurrency).  The sweep
  /// fans (SOC x weight) series out over a pool — each series walks
  /// every width through one FrontierEngine — and leftover budget goes
  /// to the engines' evaluation fan-out.  Both levels are
  /// deterministic, so results never depend on the value.
  int jobs = 1;
  /// Persistent TAM-makespan cache directory (msoc-cache-v4; legacy
  /// v1-v3 stores are read); empty disables caching.  Lookups see only the
  /// state loaded at sweep start (results computed during the sweep
  /// land on flush), so a warm re-run skips every solved cell while
  /// per-row evaluation counts stay scheduling-independent.
  std::string cache_dir;
  /// Borrowed long-lived cache (the planning daemon's shared store);
  /// mutually exclusive with cache_dir.  The sweep opens its SOCs'
  /// digests, records into the shared overlay, and flushes at the end
  /// like an owned cache, but the result's cache statistics are
  /// DELTAS over this run (instance-lifetime counters would leak other
  /// requests' traffic into the document).
  ResultCache* cache = nullptr;
  /// Incremental re-plan baseline: when non-empty, every series calls
  /// FrontierEngine::replan against the store flushed for this SOC
  /// digest (a previous revision), re-packing only partitions whose
  /// core digests went dirty.  Requires cache_dir and exactly one SOC.
  std::string replan_from;

  /// Number of cases the cross product produces.
  [[nodiscard]] std::size_t case_count() const;
};

/// One sweep case's outcome.  Infeasible cases (e.g. a TAM narrower than
/// an analog wrapper) are recorded with `error` set instead of aborting
/// the sweep; library invariant violations (LogicError) are NOT soft —
/// they propagate out of run_sweep and fail the whole sweep.
struct SweepRow {
  std::string soc_name;
  int tam_width = 0;
  double max_power = 0.0;  ///< Effective power budget; 0 = unlimited.
  /// Effective sliding-window budget; both 0 = unwindowed.
  Cycles window_cycles = 0;
  double window_limit = 0.0;
  double w_time = 0.0;
  std::string algorithm;  ///< "exhaustive" or "cost_optimizer".
  std::string best_label;
  double best_total = 0.0;
  double c_time = 0.0;
  double c_area = 0.0;
  Cycles test_time = 0;
  Cycles t_max = 0;
  /// TAM-optimizer runs this case actually performed.  Frontier-engine
  /// pruning and cache hits reduce it below the paper's heuristic N;
  /// a fully-cached case reports 0.
  int evaluations = 0;
  int total_combinations = 0;
  /// Combinations spliced from the replan baseline store (replan
  /// sweeps only; 0 otherwise).
  int reused = 0;
  double evaluation_reduction_percent = 0.0;
  double wall_ms = 0.0;  ///< Wall-clock of this case, model build included.
  std::string error;     ///< Empty on success.

  [[nodiscard]] bool ok() const { return error.empty(); }
};

struct SweepResult {
  /// One per case, in cross-product order: socs x widths x powers x
  /// weights (a single default power rung keeps the pre-power order).
  std::vector<SweepRow> rows;
  double total_wall_ms = 0.0;  ///< Whole sweep, fan-out included.
  int jobs = 1;                ///< Worker threads the sweep actually used.
  bool exhaustive = false;
  double epsilon = 0.0;
  /// Result-cache statistics, populated when the sweep ran with a
  /// cache_dir (cache_used true; all zero otherwise).
  bool cache_used = false;
  long long cache_hits = 0;
  long long cache_misses = 0;
  long long cache_records = 0;
  int cache_corrupt_files = 0;
  /// Replan provenance (replan sweeps only): the baseline digest, the
  /// total baseline-store splices, and the worst series' dirty count.
  std::string replanned_from;
  int reused = 0;
  int dirty_partitions = 0;

  /// RFC-4180 CSV with a header row (a max_power column appears when
  /// any case ran power-constrained, window_cycles/window_limit
  /// columns when any case ran windowed, a reused column for replan
  /// sweeps).
  [[nodiscard]] std::string to_csv() const;

  /// "msoc-sweep-v1" JSON document; "msoc-sweep-v2" (adding per-case
  /// max_power) when any case ran power-constrained; "msoc-sweep-v3"
  /// (adding the cache statistics block and, for replan sweeps, the
  /// replan provenance) whenever the sweep used a result cache;
  /// "msoc-sweep-v4" (adding per-case window_cycles/window_limit)
  /// when any case ran under a sliding-window budget.  Cacheless
  /// unwindowed sweeps keep emitting the v1/v2 documents byte-for-byte.
  [[nodiscard]] std::string to_json() const;
};

/// Runs every case of the cross product.  Case order in the result is
/// deterministic (socs x widths x weights, in config order) regardless of
/// jobs; wall_ms fields are the only nondeterministic outputs.
[[nodiscard]] SweepResult run_sweep(const SweepConfig& config);

/// The default benchmark sweep behind `msoc_plan --sweep`: the built-in
/// mixed-signal SOCs (p93791m and d695m) across the paper's TAM widths
/// and weight settings.
[[nodiscard]] SweepConfig default_benchmark_sweep();

}  // namespace msoc::plan

#pragma once
// Pareto-frontier planning engine: the full (TAM width, test time,
// Eq. 2 cost) curve for one SOC in one call, instead of independent
// per-width Cost_Optimizer runs.
//
// Every deployment question around the paper's Tables 3-4 is a curve —
// how do test time and cost move as the width budget moves — and the
// per-width optimizer re-derives everything from scratch at each
// width.  The engine is the assembly stage of the staged pipeline
// (msoc/plan/pipeline.hpp, docs/architecture.md): stage 1 enumerates
// the partition space once per SOC (PartitionSpace), stage 2 resolves
// digest-keyed partition makespans per (width, power) cell
// (PartitionEvaluator), and the engine walks the budget grid sharing
// everything width-independent:
//
//   * the sharing-combination enumeration, each combination's Eq. 3
//     preliminary cost, area cost, analog lower bound, and the
//     per-group representative choice (weights fixed per engine);
//   * every digital core's Pareto staircase, computed once at the
//     widest budget and sliced per width (tam::ParetoTables);
//   * optionally a persistent ResultCache of TAM makespans keyed by
//     soc::digest(), so repeated sweeps, CI benches and msoc_plan
//     invocations skip solved cells entirely.
//
// Because stage 2 is keyed purely by core-digest content, the engine
// can also RE-plan: replan(baseline_digest) diffs the current SOC
// against a previously-flushed store's digest inventory and re-packs
// only the cells whose digests went dirty, splicing every clean cell
// from the baseline store — bit-identical to a cold run(), by the
// same argument that makes the cache sound (docs/reproduction.md,
// "ECO re-plan workflow").
//
// On top of the Fig. 3 elimination it prunes surviving-group members
// whose cost lower bound — w_T * 100 * max(analog LB, digital LB(W)) /
// T_max(W) + w_A * C_A, every term known without a TAM run — strictly
// exceeds the cheapest evaluated representative.  The bound is a true
// lower bound on the Eq. 2 total and the winner is selected by strict
// <, so pruning can never change the reported optimum: per-width
// results are bit-identical to optimize_cost_heuristic /
// optimize_exhaustive, just cheaper.  Evaluations fan out over the
// common ThreadPool; all pruning thresholds are fixed before the
// fan-out, so results (including evaluation counts) are bit-identical
// for every jobs value.

#include <optional>
#include <string>
#include <vector>

#include "msoc/plan/cost_model.hpp"
#include "msoc/plan/pipeline.hpp"
#include "msoc/plan/result_cache.hpp"
#include "msoc/soc/soc.hpp"
#include "msoc/tam/packing.hpp"

namespace msoc::plan {

struct FrontierOptions {
  /// Width budgets to solve (duplicates collapse; solved ascending).
  std::vector<int> widths = {16, 24, 32, 48, 64};
  /// Power budgets to solve, each resolved against the SOC the way
  /// tam::PackingOptions::max_power is: < 0 = inherit Soc::max_power,
  /// 0 = unconstrained, > 0 explicit.  After resolution duplicates
  /// collapse; rungs are solved unconstrained first, then tightening
  /// (descending) budgets.  The default ladder is one inherit rung, so
  /// an undeclared SOC reproduces the pre-power engine exactly.
  std::vector<double> max_powers = {-1.0};
  CostWeights weights;
  /// Evaluate every combination instead of the Fig. 3 heuristic.
  bool exhaustive = false;
  /// Heuristic elimination slack (ignored when exhaustive).
  double epsilon = 0.0;
  /// Evaluation threads per width (<= 0 = hardware concurrency);
  /// results are bit-identical for every value.
  int jobs = 1;
  /// Optional persistent makespan cache (borrowed).  The engine opens
  /// the SOC's digest, reads the snapshot, and records every makespan
  /// it computes; call cache->flush() to persist.  Entries that parse
  /// but contradict a freshly-packed baseline are discarded and
  /// recomputed — a cache can make runs slower to repair, never fail.
  ResultCache* cache = nullptr;
  /// Optional precomputed Pareto staircases (borrowed; must cover this
  /// SOC at >= max(widths)).  Callers running several engines on one
  /// SOC — run_sweep's weight series — share one table; the engine
  /// computes its own when null.
  const tam::ParetoTables* pareto_tables = nullptr;

  mswrap::WrapperAreaModel area_model;
  mswrap::SharingPolicy policy;
  mswrap::EnumerationOptions enumeration;
  tam::PackingOptions packing;
};

/// One (width, power) budget cell's outcome.
struct FrontierPoint {
  int tam_width = 0;
  double max_power = 0.0;     ///< Effective power budget; 0 = unlimited.
  /// Effective sliding-window budget (every window_cycles-cycle window
  /// averages <= window_limit); both 0 = unwindowed.  One window per
  /// run (resolved from packing options / the SOC), crossed with the
  /// power ladder.
  Cycles window_cycles = 0;
  double window_limit = 0.0;
  CombinationCost best;
  Cycles t_max = 0;
  int evaluations = 0;        ///< TAM-optimizer runs at this width.
  int total_combinations = 0;
  int cache_hits = 0;         ///< Combinations answered from the cache.
  int reused = 0;             ///< Combinations spliced from the replan
                              ///< baseline store (replan() only).
  int pruned = 0;             ///< Members skipped by the lower bound.
  /// On the (width, test time) Pareto frontier: no narrower feasible
  /// budget achieves an equal-or-shorter test time.
  bool pareto = false;
  double wall_ms = 0.0;
  std::string error;          ///< Set when this width is infeasible.

  [[nodiscard]] bool ok() const { return error.empty(); }
};

struct FrontierResult {
  std::string soc_name;
  std::string digest;         ///< soc::digest_hex of the SOC.
  std::string algorithm;      ///< "exhaustive" or "cost_optimizer".
  double w_time = 0.0;
  /// One point per (power rung, width): rungs in solve order, widths
  /// ascending within each rung.
  std::vector<FrontierPoint> points;
  int evaluations = 0;        ///< Total TAM-optimizer runs.
  int cache_hits = 0;
  int pruned = 0;
  /// Replan provenance: the baseline store's SOC digest when this
  /// result came from replan() with a usable baseline, else empty.
  std::string replanned_from;
  int reused = 0;             ///< Total baseline-store splices.
  /// Partitions whose digests went dirty vs the baseline (replan()
  /// with a usable baseline only; the worst rung's count).
  int dirty_partitions = 0;
  /// Test time never increases with width over the feasible points of
  /// EVERY power rung — the sanity the paper's Tables 3-4 rely on.
  bool time_monotone = true;
  double wall_ms = 0.0;       ///< Whole run, setup included.

  /// "msoc-frontier-v1" JSON document, "msoc-frontier-v2" (adding
  /// per-point max_power) when any rung is power-constrained,
  /// "msoc-frontier-v3" (adding replanned_from / reused /
  /// dirty_partitions) when the result came from a replan, or
  /// "msoc-frontier-v4" (adding per-point window_cycles/window_limit)
  /// when the run enforced a sliding-window budget.  Unwindowed
  /// non-replan documents are byte-identical to the pre-replan
  /// engine's.
  [[nodiscard]] std::string to_json() const;
  /// RFC-4180 CSV, one row per (power rung, width) cell; a max_power
  /// column appears when any rung is power-constrained,
  /// window_cycles/window_limit columns when the run was windowed, a
  /// reused column when the result came from a replan.
  [[nodiscard]] std::string to_csv() const;
};

/// Reusable frontier solver for one SOC.  The SOC and the options'
/// cache are borrowed and must outlive the engine; run() may be called
/// repeatedly (e.g. cold/warm timing) and is itself single-threaded at
/// the API level — internal evaluation fan-out is governed by
/// options.jobs.
class FrontierEngine {
 public:
  FrontierEngine(const soc::Soc& soc, FrontierOptions options);

  FrontierEngine(const FrontierEngine&) = delete;
  FrontierEngine& operator=(const FrontierEngine&) = delete;

  [[nodiscard]] FrontierResult run();

  /// Incremental re-plan against the store flushed for
  /// `baseline_digest` (a previous revision of this SOC).  Diffs the
  /// baseline store's digest inventory against the current SOC and
  /// re-packs ONLY the partitions containing a dirty core digest;
  /// clean partitions splice their makespans from the baseline store
  /// and are re-recorded under the current digest.  Bit-identical to a
  /// cold run() — baseline entries are reused only where the makespan
  /// is provably the same function of the surviving content.  Falls
  /// back to a plain run() (with a warning, replanned_from empty) when
  /// the engine has no cache or the baseline store has no inventory
  /// (missing file or legacy v1/v2 schema).
  [[nodiscard]] FrontierResult replan(const std::string& baseline_digest);

  [[nodiscard]] const std::string& digest() const noexcept {
    return digest_;
  }

 private:
  [[nodiscard]] FrontierPoint solve_point(int width, double max_power);
  [[nodiscard]] FrontierPoint solve_point_attempt(int width,
                                                  double max_power,
                                                  bool trust_cache);
  [[nodiscard]] FrontierResult run_grid();

  const soc::Soc& soc_;
  FrontierOptions options_;
  std::string digest_;
  std::string fingerprint_;
  std::vector<std::string> names_;
  std::optional<PartitionSpace> space_;  ///< Engaged by the ctor.
  tam::ParetoTables own_pareto_tables_;        ///< Empty when borrowed.
  const tam::ParetoTables* pareto_tables_ = nullptr;
  std::vector<int> widths_;  ///< Ascending, unique.
  std::vector<double> powers_;  ///< Resolved rungs, solve order.
  /// Resolved sliding-window budget (inactive = unwindowed run).
  soc::PowerWindow window_;
  int max_analog_width_ = 0;
  double peak_test_power_ = 0.0;

  /// Replan state, engaged only inside replan() with a usable
  /// baseline: the baseline digest and the per-cell reuse permissions
  /// in both digest flavors (full for constrained rungs, power-
  /// stripped for unconstrained ones).
  std::string replan_baseline_;
  std::optional<std::vector<bool>> clean_full_;
  std::optional<std::vector<bool>> clean_packing_;
};

}  // namespace msoc::plan

#pragma once
// The paper's test-cost model (Eq. 2 and Eq. 3).
//
//   C = w_T * C_time + w_A * C_A                          (Eq. 2)
//
// C_time = 100 * T(W, partition) / T_max(W), where T_max is the SOC test
// time when ALL analog cores share a single wrapper — the most
// constrained schedule, used as the normalization baseline.  C_A is the
// Eq.(1) area-overhead cost from the mswrap layer.
//
// The preliminary cost (Eq. 3) replaces the expensive C_time with the
// free analog lower bound:  Prelim = w_T * LB_norm + w_A * C_A.  It is
// what the Cost_Optimizer heuristic prunes on.

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "msoc/common/units.hpp"
#include "msoc/mswrap/area_model.hpp"
#include "msoc/mswrap/partition.hpp"
#include "msoc/mswrap/sharing.hpp"
#include "msoc/soc/soc.hpp"
#include "msoc/tam/packing.hpp"
#include "msoc/tam/schedule.hpp"

namespace msoc::plan {

/// Weights of Eq. 2; must be non-negative and sum to 1.
struct CostWeights {
  double time = 0.5;
  double area = 0.5;

  void validate() const;
};

/// Everything the planner needs to evaluate combinations on one SOC.
struct PlanningProblem {
  const soc::Soc* soc = nullptr;
  int tam_width = 32;
  CostWeights weights;
  mswrap::WrapperAreaModel area_model;
  mswrap::SharingPolicy policy;
  mswrap::EnumerationOptions enumeration;
  tam::PackingOptions packing;

  void validate() const;
};

/// Full evaluation of one sharing combination.
struct CombinationCost {
  mswrap::Partition partition;
  std::string label;
  Cycles test_time = 0;    ///< Schedule makespan from the TAM optimizer.
  double c_time = 0.0;     ///< 100 * T / T_max.
  double c_area = 0.0;     ///< Eq.(1).
  double total = 0.0;      ///< Eq.(2).
};

/// Evaluates combinations against one PlanningProblem, memoizing the
/// expensive TAM-optimizer runs and the T_max baseline.
///
/// Thread safety: evaluate() and run_tam's memo table are guarded by an
/// internal mutex, and the T_max baseline is computed eagerly at
/// construction, so concurrent evaluate() calls on distinct partitions
/// are safe and produce exactly the serial results (schedule_soc is a
/// pure function of its arguments).  Construction itself is not
/// concurrent-safe; build the model before fanning out.
class CostModel {
 public:
  explicit CostModel(const PlanningProblem& problem);

  /// SOC test time with all analog cores on one wrapper (computed at
  /// construction — it is the C_time normalization every evaluation
  /// needs).
  [[nodiscard]] Cycles t_max() const noexcept { return t_max_; }

  /// Eq. 3 preliminary cost from statically-known quantities.
  [[nodiscard]] double preliminary_cost(
      const mswrap::SharingEvaluation& evaluation) const;

  /// Full Eq. 2 evaluation (runs the TAM optimizer; memoized).
  [[nodiscard]] CombinationCost evaluate(const mswrap::Partition& partition);

  /// Number of distinct TAM-optimizer invocations so far.  The all-share
  /// baseline is excluded: its schedule is the normalization constant the
  /// model needs anyway (this matches the paper's evaluation counting).
  [[nodiscard]] int tam_runs() const;

  [[nodiscard]] const std::vector<soc::AnalogCore>& cores() const {
    return problem_.soc->analog_cores();
  }
  [[nodiscard]] const PlanningProblem& problem() const { return problem_; }

  /// The schedule behind an already-evaluated combination.
  [[nodiscard]] tam::Schedule schedule_for(
      const mswrap::Partition& partition) const;

 private:
  [[nodiscard]] Cycles run_tam(const mswrap::Partition& partition);

  PlanningProblem problem_;
  std::vector<std::string> names_;
  Cycles t_max_ = 0;
  /// Baseline schedule from construction; read-only afterwards, lent to
  /// schedule_soc as the serialized-fallback hint so every evaluation
  /// skips repacking the identical merged arrangement.
  tam::Schedule all_share_schedule_;
  mutable std::mutex mutex_;  ///< Guards tam_runs_ and time_cache_.
  int tam_runs_ = 0;
  std::map<mswrap::Partition, Cycles> time_cache_;
};

}  // namespace msoc::plan

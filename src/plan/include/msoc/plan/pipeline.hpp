#pragma once
// The staged planning pipeline behind plan::FrontierEngine
// (docs/architecture.md, "staged pipeline"):
//
//   Stage 1 — PartitionSpace: enumerate the sharing combinations once
//   per SOC, with each combination's Eq. 3 preliminary cost, analog
//   lower bound, Fig. 3 shape groups, and BOTH content-addressed cache
//   keys (full-digest for power-constrained cells, power-stripped for
//   unconstrained ones).  Everything here is width- and
//   budget-independent.
//
//   Stage 2 — PartitionEvaluator: resolve partition makespans for one
//   (width, budget) cell.  Keyed entirely by core-digest multisets, so
//   a makespan can come from three places, tried in order: the current
//   store's snapshot, a replan BASELINE store (when the cell's digests
//   are clean relative to it), or a fresh TAM pack (one deterministic
//   parallel fan-out over the misses).  Reused and fresh results alike
//   are re-recorded under the CURRENT digest — that is the splice that
//   materializes an up-to-date store on flush.
//
//   Stage 3 — frontier assembly (frontier.cpp): Fig. 3 elimination,
//   lower-bound pruning, winner reduction, and per-rung Pareto /
//   monotonicity marking over the resolved makespans.
//
// The stages share no hidden state: stage 2 sees stage 1 only through
// the cells' cache keys, which is exactly why stage 2 results survive
// SOC revisions whose digests are clean (FrontierEngine::replan).

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "msoc/plan/cost_model.hpp"
#include "msoc/plan/result_cache.hpp"
#include "msoc/soc/delta.hpp"
#include "msoc/soc/soc.hpp"

namespace msoc::plan {

/// Raised by stage 2 when a parseable cache entry contradicts a
/// freshly-packed baseline (stale or tampered store): the caller
/// re-solves the cell without trusting any store.  Never escapes the
/// engine.
struct StaleCacheError {};

/// One enumerated sharing combination with its width-independent
/// precomputation (stage 1 product).
struct PartitionCell {
  mswrap::SharingEvaluation evaluation;
  double prelim = 0.0;    ///< Eq. 3, matches CostModel::preliminary_cost.
  Cycles analog_lb = 0;   ///< Busiest-wrapper usage (width-independent).
  std::string key_full;     ///< partition_key over full core digests.
  std::string key_packing;  ///< ... over power-stripped digests.

  /// The cache key a cell at effective budget `max_power` stores under:
  /// constrained packs (peak budget OR sliding-window budget) see power
  /// annotations, unconstrained ones provably cannot, so those key on
  /// the stripped digests and stay valid across power-annotation-only
  /// revisions.
  [[nodiscard]] const std::string& key_for(double max_power,
                                           bool windowed = false) const {
    return max_power > 0.0 || windowed ? key_full : key_packing;
  }
};

/// Fig. 3 shape group over PartitionSpace cells.
struct PartitionGroup {
  std::vector<std::size_t> members;  ///< Cell indices, enumeration order.
  std::size_t representative = 0;    ///< Best Eq. 3 member.
};

/// Stage 1: the enumerated partition space of one SOC under one set of
/// weights — combination cells, their shape groups, and the all-share
/// baseline partition every cost normalizes by.
class PartitionSpace {
 public:
  /// Enumerates and groups; throws InfeasibleError when no sharing
  /// combination is feasible.
  PartitionSpace(const soc::Soc& soc, const CostWeights& weights,
                 const mswrap::WrapperAreaModel& area_model,
                 const mswrap::SharingPolicy& policy,
                 const mswrap::EnumerationOptions& enumeration);

  std::vector<PartitionCell> cells;
  std::vector<PartitionGroup> groups;
  mswrap::Partition all_share;       ///< Every analog core on one wrapper.
  std::string all_share_key_full;
  std::string all_share_key_packing;

  [[nodiscard]] const std::string& all_share_key_for(
      double max_power, bool windowed = false) const {
    return max_power > 0.0 || windowed ? all_share_key_full
                                       : all_share_key_packing;
  }

  /// Per-cell reuse permission against a baseline delta: a cell is
  /// CLEAN when the digital context and every member analog core of
  /// its partition are untouched in the digest flavor the budget class
  /// keys on (`packing` flavor for unconstrained cells).  Dirty cells
  /// must be re-packed; clean ones may read the baseline store.
  [[nodiscard]] std::vector<bool> classify_clean(
      const soc::Soc& soc, const soc::DigestDelta& delta,
      bool packing_flavor) const;
};

/// Stage 2: makespan resolution for one (width, budget) cell.  Create
/// one per cell; `begin_cell` fixes the T_max baseline, `resolve`
/// fills makespans for cell indices on demand.  All lookups hit the
/// stores' open-time snapshots, and the fresh-pack fan-out is
/// deterministic per `jobs`, so resolution order never changes
/// results.
class PartitionEvaluator {
 public:
  /// `clean` (borrowed, may be null = no baseline reuse) flags the
  /// cells allowed to read `baseline_digest`'s store.  `cache` may be
  /// null (everything is packed fresh).  `trust_cache` false disables
  /// ALL store reads — the StaleCacheError retry path.
  /// `window_cycles`/`window_limit` are the EFFECTIVE sliding-window
  /// budget of the cell (both 0 = unwindowed); like max_power they are
  /// explicit EntryKey coordinates, and an active window flips the
  /// partition keys to the powered (full-digest) flavor.
  PartitionEvaluator(const PartitionSpace& space, ResultCache* cache,
                     const std::string& digest,
                     const std::string& baseline_digest,
                     const std::string& fingerprint, int width,
                     double max_power, Cycles window_cycles,
                     double window_limit, bool trust_cache,
                     const std::vector<bool>* clean, int jobs);

  /// Resolves the all-share T_max: current store, then baseline store,
  /// then `pack_t_max()` (records fresh AND baseline-read values under
  /// the current digest).  Returns the baseline; `from_store` reports
  /// whether it was answered without packing — the caller must verify
  /// a store-read baseline against the model before trusting
  /// store-read makespans (see t_max_confirmed).
  [[nodiscard]] Cycles begin_cell(const std::function<Cycles()>& pack_t_max,
                                  const std::string& label,
                                  bool* from_store);

  /// Resolves `indices`: current store, baseline store (clean cells
  /// only), then one parallel fan-out of `model()`.evaluate over the
  /// misses.  `model` is invoked only when misses exist.  Throws
  /// StaleCacheError when a store value contradicts the baseline.
  void resolve(const std::vector<std::size_t>& indices,
               const std::function<CostModel&()>& model);

  [[nodiscard]] const std::optional<Cycles>& time(std::size_t index) const {
    return time_of_[index];
  }
  [[nodiscard]] int cache_hits() const noexcept { return cache_hits_; }
  [[nodiscard]] int reused() const noexcept { return reused_; }

 private:
  /// Store lookup for one key: current digest first, then the baseline
  /// store when this cell may reuse it.  Counts hits/reused and
  /// re-records baseline reads under the current digest (the splice).
  [[nodiscard]] std::optional<Cycles> lookup(const std::string& key,
                                             const std::string& label,
                                             bool cell_clean);

  const PartitionSpace& space_;
  ResultCache* cache_;
  const std::string& digest_;
  const std::string& baseline_digest_;  ///< Empty = not replanning.
  const std::string& fingerprint_;
  int width_;
  double max_power_;
  Cycles window_cycles_;
  double window_limit_;
  bool trust_cache_;
  const std::vector<bool>* clean_;
  int jobs_;
  Cycles t_max_ = 0;
  bool t_max_from_store_ = false;
  std::vector<std::optional<Cycles>> time_of_;
  int cache_hits_ = 0;
  int reused_ = 0;
};

}  // namespace msoc::plan

#pragma once
// Test-cost optimizers: exhaustive baseline and the Cost_Optimizer
// heuristic (paper Fig. 3).
//
// Exhaustive: run the TAM optimizer for every sharing combination and
// take the minimum of Eq. 2 — optimal but exponential in core count.
//
// Cost_Optimizer:
//   1. Group combinations by degree of sharing (partition shape).
//   2. Compute the Eq. 3 preliminary cost of every combination from the
//      statically-known area cost and analog-time lower bound.
//   3. Evaluate only the best preliminary element of each group with the
//      TAM optimizer.
//   4. Keep the group with the cheapest evaluated representative;
//      eliminate every group whose representative costs more than the
//      winner by more than epsilon.
//   5. Fully evaluate surviving groups; return the overall minimum.
//
// Evaluation counting matches the paper: the all-share combination is
// free (it is the C_time normalization baseline), so N is the number of
// *additional* TAM-optimizer runs.

#include <cstddef>
#include <string>
#include <vector>

#include "msoc/plan/cost_model.hpp"

namespace msoc::plan {

/// Result common to both optimizers.
struct OptimizationResult {
  CombinationCost best;
  int evaluations = 0;      ///< TAM-optimizer runs (paper's N).
  int total_combinations = 0;  ///< Paper's N_tot.

  /// Reduction in evaluations vs exhaustive: (N_tot - N)/N_tot * 100.
  [[nodiscard]] double evaluation_reduction_percent() const;
};

/// Extra diagnostics from the heuristic.
struct HeuristicDiagnostics {
  std::vector<std::string> group_shapes;      ///< e.g. "3+2".
  std::vector<double> representative_costs;   ///< Eq.2 of each group rep.
  std::vector<bool> eliminated;               ///< Group pruned?
};

struct HeuristicResult : OptimizationResult {
  HeuristicDiagnostics diagnostics;
};

/// Evaluates every combination; optimal under the cost model.
///
/// `jobs` fans the TAM evaluations out over that many threads (<= 0 uses
/// the hardware concurrency).  Every cost lands in a per-combination
/// slot and the minimum is reduced serially in enumeration order, so the
/// result — best, evaluations, total — is bit-identical for every jobs
/// value.
[[nodiscard]] OptimizationResult optimize_exhaustive(CostModel& model,
                                                     int jobs = 1);

struct HeuristicOptions {
  /// Elimination slack epsilon of Fig. 3 (cost units).  0 = aggressive
  /// pruning (the paper's Table-4 setting).
  double epsilon = 0.0;
  /// TAM-evaluation threads (<= 0 = hardware concurrency).  Parallelizes
  /// the group-representative runs and the surviving groups' full
  /// evaluations; results are bit-identical to jobs == 1.
  int jobs = 1;
};

/// The Fig. 3 Cost_Optimizer heuristic.
[[nodiscard]] HeuristicResult optimize_cost_heuristic(
    CostModel& model, const HeuristicOptions& options = {});

}  // namespace msoc::plan

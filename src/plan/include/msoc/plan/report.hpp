#pragma once
// Experiment drivers that regenerate the paper's tables as structured
// data plus ASCII renderings.  Bench binaries and examples print these.

#include <string>
#include <vector>

#include "msoc/plan/cost_model.hpp"
#include "msoc/plan/optimizer.hpp"

namespace msoc::plan {

// ---------------------------------------------------------------- Table 1
struct Table1Row {
  std::size_t wrapper_count = 0;
  std::string label;
  double area_cost = 0.0;          ///< C_A.
  Cycles analog_lb_cycles = 0;     ///< LB_A raw.
  double analog_lb_normalized = 0.0;
  bool feasible = true;
};

struct Table1 {
  std::vector<Table1Row> rows;
  [[nodiscard]] std::string render() const;
};

[[nodiscard]] Table1 make_table1(
    const std::vector<soc::AnalogCore>& cores,
    const mswrap::WrapperAreaModel& area_model = mswrap::WrapperAreaModel{},
    const mswrap::SharingPolicy& policy = mswrap::SharingPolicy{},
    const mswrap::EnumerationOptions& enumeration = {});

// ---------------------------------------------------------------- Table 2
struct Table2 {
  std::vector<soc::AnalogCore> cores;
  [[nodiscard]] std::string render() const;
};

[[nodiscard]] Table2 make_table2(const std::vector<soc::AnalogCore>& cores);

// ---------------------------------------------------------------- Table 3
struct Table3Row {
  std::size_t wrapper_count = 0;
  std::string label;
  std::vector<double> c_time;  ///< One per TAM width, 100 = all-share.
};

struct Table3 {
  std::vector<int> widths;
  std::vector<Table3Row> rows;

  /// Spread (max - min C_time) per width; the paper quotes these growing
  /// with W (2.45 / 7.36 / 17.18 at 32 / 48 / 64).
  [[nodiscard]] std::vector<double> spreads() const;

  [[nodiscard]] std::string render() const;
};

[[nodiscard]] Table3 make_table3(const soc::Soc& soc,
                                 const std::vector<int>& widths,
                                 const PlanningProblem& base);

// ---------------------------------------------------------------- Table 4
struct Table4Row {
  int tam_width = 0;
  double exhaustive_cost = 0.0;
  int exhaustive_evaluations = 0;
  std::string exhaustive_label;
  double heuristic_cost = 0.0;
  int heuristic_evaluations = 0;
  std::string heuristic_label;
  double evaluation_reduction = 0.0;
  [[nodiscard]] bool heuristic_optimal() const {
    return heuristic_cost <= exhaustive_cost + 1e-9;
  }
};

struct Table4Block {
  CostWeights weights;
  std::vector<Table4Row> rows;
};

struct Table4 {
  std::vector<Table4Block> blocks;
  [[nodiscard]] std::string render() const;
};

[[nodiscard]] Table4 make_table4(const soc::Soc& soc,
                                 const std::vector<int>& widths,
                                 const std::vector<CostWeights>& weight_sets,
                                 const PlanningProblem& base);

}  // namespace msoc::plan

#pragma once
// Persistent TAM-optimizer result cache (the msoc-cache-v1 store,
// documented in docs/formats.md).
//
// What is cached: schedule_soc makespans — the expensive, pure part of
// a CombinationCost.  Everything else in Eq. 2 (C_A, C_time, the
// weighted total) is cheap arithmetic over the cached time and is
// recomputed at load, so weights can change between runs without
// invalidating a single entry.
//
// How entries are keyed (all content-addressed, nothing positional):
//   * soc::digest_hex — which SOC (stable under core reordering and
//     renames);
//   * TAM width;
//   * the effective power budget (0 = unconstrained), so
//     power-constrained makespans can never collide with unconstrained
//     ones.  Unconstrained entries keep their pre-power keys and the
//     msoc-cache-v1 file schema; a store holding any constrained entry
//     is written as msoc-cache-v2 (readers accept both);
//   * a fingerprint of the PackingOptions fields that influence the
//     makespan (placement racing, flexible width, improvement rounds,
//     granularity, serialized fallback);
//   * a partition key built from per-core content digests: each
//     wrapper group is the sorted list of its members' core_digest
//     values, groups sorted — so relabeled or reordered cores, and
//     even symmetric partitions over tests_equivalent cores (the
//     paper's A/B pair), share one entry.
//
// Read/write discipline: lookups see only the SNAPSHOT present when the
// digest was opened; record() lands in an overlay that becomes visible
// on flush().  This keeps parallel sweeps deterministic — which worker
// computes a cell never changes what another worker can observe — at
// the cost of intra-run cross-series sharing.  Corrupt, truncated, or
// wrong-schema cache files are treated as absent (and counted), never
// as errors: the cache must only ever make runs faster, not wronger.

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "msoc/common/units.hpp"
#include "msoc/mswrap/partition.hpp"
#include "msoc/soc/soc.hpp"
#include "msoc/tam/packing.hpp"

namespace msoc::plan {

/// Fingerprint (16 hex chars) of the PackingOptions fields a makespan
/// depends on.  Excluded: assign_wires (wire coloring never moves a
/// test), the borrowed hint pointers (runtime plumbing), and max_power
/// — the effective budget is an explicit lookup/record key segment, so
/// fingerprinting it too would double-count it.
[[nodiscard]] std::string packing_fingerprint(
    const tam::PackingOptions& options);

/// Canonical cache key of a sharing partition over `cores`: per group
/// the sorted member core_digest values, groups sorted.
[[nodiscard]] std::string partition_key(
    const std::vector<soc::AnalogCore>& cores,
    const mswrap::Partition& partition);

class ResultCache {
 public:
  /// In-memory cache: empty snapshot, flush() is a no-op.
  ResultCache() = default;

  /// Disk-backed cache rooted at `directory` (created on flush).
  explicit ResultCache(std::string directory);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Loads the snapshot for one SOC digest from
  /// `<directory>/<digest>.json`.  Idempotent and thread-safe
  /// (internally locked), but the file read happens under the lock, so
  /// prefer opening every digest up front before fanning lookups out.
  /// Unreadable or corrupt files load as empty and bump
  /// corrupt_files().
  void open(const std::string& digest, const std::string& soc_name = "");

  /// Snapshot lookup; nullopt on miss (or when the digest was never
  /// opened).  `max_power` is the EFFECTIVE budget of the pack (0 =
  /// unconstrained; inherit-from-SOC must be resolved by the caller).
  /// Thread-safe.
  [[nodiscard]] std::optional<Cycles> lookup(const std::string& digest,
                                             int tam_width, double max_power,
                                             const std::string& fingerprint,
                                             const std::string& key) const;

  /// Records a computed makespan in the overlay (visible to lookups
  /// only after the next flush; last writer wins on duplicates).
  /// Thread-safe.
  void record(const std::string& digest, int tam_width, double max_power,
              const std::string& fingerprint, const std::string& key,
              const std::string& label, Cycles test_time);

  /// Writes snapshot + overlay back to disk (atomic per file) and
  /// merges the overlay into the snapshot.  No-op for in-memory
  /// caches (the overlay still merges, so a subsequent run() in the
  /// same process can hit it).
  void flush();

  [[nodiscard]] bool disk_backed() const noexcept {
    return !directory_.empty();
  }
  [[nodiscard]] const std::string& directory() const noexcept {
    return directory_;
  }

  /// Counters since construction (thread-safe).
  [[nodiscard]] long long hits() const;
  [[nodiscard]] long long misses() const;
  [[nodiscard]] long long records() const;
  [[nodiscard]] int corrupt_files() const;

 private:
  struct Entry {
    Cycles test_time = 0;
    std::string label;  ///< Informational only; not part of the key.
  };
  struct Store {
    std::string soc_name;
    std::map<std::string, Entry> snapshot;  ///< Visible to lookup().
    std::map<std::string, Entry> overlay;   ///< Pending record()s.
  };

  [[nodiscard]] std::string file_path(const std::string& digest) const;
  void load_store(const std::string& digest, Store& store);

  std::string directory_;
  std::map<std::string, Store> stores_;
  mutable std::mutex mutex_;
  mutable long long hits_ = 0;
  mutable long long misses_ = 0;
  long long records_ = 0;
  int corrupt_files_ = 0;
};

}  // namespace msoc::plan

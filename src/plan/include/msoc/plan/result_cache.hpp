#pragma once
// Persistent TAM-optimizer result cache (the msoc-cache-v4 sharded,
// journaled store documented in docs/formats.md; v1/v2/v3 single-file
// stores are still read).
//
// What is cached: schedule_soc makespans — the expensive, pure part of
// a CombinationCost.  Everything else in Eq. 2 (C_A, C_time, the
// weighted total) is cheap arithmetic over the cached time and is
// recomputed at load, so weights can change between runs without
// invalidating a single entry.
//
// How entries are keyed (all content-addressed, nothing positional):
//   * soc::digest_hex — which SOC (stable under core reordering and
//     renames);
//   * an EntryKey value: TAM width, the effective power budget (0 =
//     unconstrained), a fingerprint of the PackingOptions fields that
//     influence the makespan, and a partition key built from per-core
//     content digests — each wrapper group is the sorted list of its
//     members' digests, groups sorted — so relabeled or reordered
//     cores, and even symmetric partitions over tests_equivalent cores
//     (the paper's A/B pair), share one entry.
//
// Partition keys are power-CONDITIONAL: constrained entries (budget >
// 0) key on the full core_digest, while unconstrained entries key on
// packing_core_digest — the power-stripped description, which is all
// an unconstrained pack can observe.  That makes unconstrained entries
// portable across revisions that only touch power annotations: the
// replan path (plan::FrontierEngine::replan) reuses a baseline store's
// entries after such an ECO edit even though the enclosing SOC digest
// changed.  To support that diff without the baseline .soc file, every
// store persists its SOC's soc::DigestInventory (journal meta records
// and the snapshot header carry it).
//
// On-disk layout (msoc-cache-v4):
//   <dir>/<digest>.json      legacy v1/v2/v3 store (read-only compat;
//                            deleted once compaction migrates it)
//   <dir>/<pp>/journal.wal   per-shard append-only WAL (pp = first two
//                            hex chars of the digest); flush() appends
//                            this run's overlay as checksummed records
//                            under an exclusive flock — O(overlay),
//                            one fsync per dirty shard
//   <dir>/<pp>/<digest>.json v4 snapshot (v3 body, v4 schema string),
//                            written by compaction when the journal
//                            crosses CacheTuning::compact_threshold_
//                            bytes, or explicitly via compact()
//
// A store opens as legacy-file ∪ snapshot ∪ journal replay (later
// layers win).  Replay tolerates torn journal tails — the artifact of
// a writer killed mid-append — by truncating at the first bad record
// (readers just stop there; the next appender physically truncates
// under its exclusive lock).  Complete-but-corrupt records and
// unusable headers count toward corrupt_files() and never abort a run.
//
// Read/write discipline: lookups see only the SNAPSHOT present when the
// digest was opened; record() lands in an overlay that becomes visible
// on flush().  This keeps parallel sweeps deterministic — which worker
// computes a cell never changes what another worker can observe — at
// the cost of intra-run cross-series sharing.  Journal records other
// processes append while a digest is open are likewise invisible until
// that digest is re-opened by a fresh cache.  Corrupt, truncated, or
// wrong-schema cache artifacts are treated as absent (and counted),
// never as errors: the cache must only ever make runs faster, not
// wronger.

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "msoc/common/file_lock.hpp"
#include "msoc/common/units.hpp"
#include "msoc/mswrap/partition.hpp"
#include "msoc/soc/delta.hpp"
#include "msoc/soc/soc.hpp"
#include "msoc/tam/packing.hpp"

namespace msoc::plan {

/// Fingerprint (16 hex chars) of the PackingOptions fields a makespan
/// depends on.  Excluded: assign_wires (wire coloring never moves a
/// test), the borrowed hint pointers (runtime plumbing), and max_power
/// — the effective budget is an explicit EntryKey field, so
/// fingerprinting it too would double-count it.
[[nodiscard]] std::string packing_fingerprint(
    const tam::PackingOptions& options);

/// Canonical cache key of a sharing partition over `cores`: per group
/// the sorted member digests, groups sorted.  `powered` picks the
/// digest flavor — full core_digest (constrained entries) or the
/// power-stripped packing_core_digest (unconstrained entries).
[[nodiscard]] std::string partition_key(
    const std::vector<soc::AnalogCore>& cores,
    const mswrap::Partition& partition, bool powered);

/// Full-digest convenience overload (identical to powered = true, and
/// to every flavor on cores that declare no power).
[[nodiscard]] std::string partition_key(
    const std::vector<soc::AnalogCore>& cores,
    const mswrap::Partition& partition);

/// Size/eviction policy knobs of a disk-backed ResultCache.
struct CacheTuning {
  /// Journal payload bytes past which flush() compacts the shard.
  std::uint64_t compact_threshold_bytes = 1u << 20;
  /// Open in-memory stores past which open() evicts the least
  /// recently used clean store.
  std::size_t max_open_stores = 256;
};

/// What one compact() call did.
struct CompactionStats {
  int shards_compacted = 0;       ///< Journals folded and reset.
  long long records_folded = 0;   ///< Journal records folded away.
  int snapshots_written = 0;      ///< v4 snapshot files (re)written.
  int legacy_files_migrated = 0;  ///< v1/v2/v3 files rewritten as v4.
};

class ResultCache {
 public:
  /// Typed entry key inside one digest's store — the coordinates a
  /// makespan depends on besides the SOC itself.
  struct EntryKey {
    /// Field-wise construction for loaders that validate elsewhere.
    EntryKey() = default;
    /// Validating constructor (every computed key goes through here):
    /// rejects non-finite or negative budgets — NaN would break the
    /// strict weak ordering below and corrupt every std::map keyed on
    /// EntryKey — non-positive widths, and a half-set window (cycles
    /// and limit must be positive together or zero together).
    EntryKey(int tam_width, double max_power, std::string fingerprint,
             std::string partition, Cycles window_cycles = 0,
             double window_limit = 0.0);

    int tam_width = 0;
    double max_power = 0.0;  ///< Effective budget; 0 = unconstrained.
    /// Effective sliding-window budget; both 0 = unwindowed.  Like
    /// max_power these are explicit key fields (not fingerprinted),
    /// and they serialize only when set, so pre-window stores and
    /// unwindowed entries keep their exact on-disk bytes.
    Cycles window_cycles = 0;
    double window_limit = 0.0;
    std::string fingerprint;
    std::string partition;

    friend bool operator<(const EntryKey& a, const EntryKey& b) {
      if (a.tam_width != b.tam_width) return a.tam_width < b.tam_width;
      if (a.max_power != b.max_power) return a.max_power < b.max_power;
      if (a.window_cycles != b.window_cycles) {
        return a.window_cycles < b.window_cycles;
      }
      if (a.window_limit != b.window_limit) {
        return a.window_limit < b.window_limit;
      }
      if (a.fingerprint != b.fingerprint) {
        return a.fingerprint < b.fingerprint;
      }
      return a.partition < b.partition;
    }
  };

  /// In-memory cache: empty snapshot, flush() merges but writes nothing.
  ResultCache() = default;

  /// Disk-backed cache rooted at `directory` (created on flush).
  explicit ResultCache(std::string directory);

  /// Disk-backed cache with explicit compaction/eviction policy.
  ResultCache(std::string directory, CacheTuning tuning);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Loads the snapshot for one SOC digest: legacy `<digest>.json`,
  /// then the shard's v4 snapshot, then a replay of the shard journal
  /// (shared-locked; later layers win).  Idempotent and thread-safe
  /// (internally locked), but the file I/O happens under the lock, so
  /// prefer opening every digest up front before fanning lookups out.
  /// Unreadable or corrupt artifacts load as absent and bump
  /// corrupt_files().  May evict an older clean store (see
  /// CacheTuning::max_open_stores).
  void open(const std::string& digest, const std::string& soc_name = "");

  /// open() with the SOC in hand: additionally computes and pins the
  /// store's soc::DigestInventory (`digest` must be the SOC's own) so
  /// a flushed store can serve as a replan baseline.
  void open(const std::string& digest, const soc::Soc& soc);

  /// The inventory of an opened store — from the SOC it was opened
  /// with, from a journal meta record, or from the v3/v4 file header;
  /// nullopt for never-opened digests and legacy v1/v2 files (those
  /// cannot seed a replan).
  [[nodiscard]] std::optional<soc::DigestInventory> inventory(
      const std::string& digest) const;

  /// Snapshot lookup; nullopt on miss (or when the digest was never
  /// opened).  `key.max_power` is the EFFECTIVE budget of the pack
  /// (0 = unconstrained; inherit-from-SOC must be resolved by the
  /// caller).  Thread-safe.
  [[nodiscard]] std::optional<Cycles> lookup(const std::string& digest,
                                             const EntryKey& key) const;

  /// Records a computed makespan in the overlay (visible to lookups
  /// only after the next flush; last writer wins on duplicates).
  /// Thread-safe.
  void record(const std::string& digest, const EntryKey& key,
              const std::string& label, Cycles test_time);

  /// Merges every overlay into its snapshot and, for disk-backed
  /// caches, appends the overlay entries to their shard journals —
  /// O(overlay) work and one fsync per dirty shard, under an exclusive
  /// per-shard file lock (torn tails left by killed writers are
  /// truncated here before appending).  Shards whose journal grew past
  /// the compaction threshold are folded into snapshot files.  No-op
  /// file-wise for in-memory caches (the overlay still merges, so a
  /// subsequent run() in the same process can hit it).
  void flush();

  /// Folds every shard journal under the cache directory into v4
  /// snapshot files, resets the journals, and migrates any remaining
  /// legacy v1/v2/v3 single-file stores into v4 shards (deleting the
  /// legacy files).  Safe against concurrent writers (per-shard
  /// exclusive locks).  Also flushes pending overlays first.
  CompactionStats compact();

  [[nodiscard]] bool disk_backed() const noexcept {
    return !directory_.empty();
  }
  [[nodiscard]] const std::string& directory() const noexcept {
    return directory_;
  }

  /// Counters since construction (thread-safe).
  [[nodiscard]] long long hits() const;
  [[nodiscard]] long long misses() const;
  [[nodiscard]] long long records() const;
  [[nodiscard]] int corrupt_files() const;
  /// Records appended to journals by this cache's flush() calls.
  [[nodiscard]] long long journal_records() const;
  /// Bytes appended to journals by this cache (records + headers).
  [[nodiscard]] long long journal_bytes() const;
  /// Journal records replayed from disk (other writers' and past
  /// runs' appends observed by open()/flush() scans).
  [[nodiscard]] long long replayed_records() const;
  /// Shard compactions performed (threshold-triggered + explicit).
  [[nodiscard]] long long compactions() const;
  /// Clean stores dropped by the LRU bound.
  [[nodiscard]] long long evictions() const;
  /// Torn journal tails observed (killed-writer artifacts; recovered,
  /// not corruption).
  [[nodiscard]] long long torn_tails() const;

 private:
  struct Entry {
    Cycles test_time = 0;
    std::string label;  ///< Informational only; not part of the key.
  };
  struct Store {
    std::string soc_name;
    std::optional<soc::DigestInventory> inventory;
    std::map<EntryKey, Entry> snapshot;  ///< Visible to lookup().
    std::map<EntryKey, Entry> overlay;   ///< Pending record()s.
    /// True once this store's meta record sits in the current journal
    /// generation (re-appended after compaction bumps the generation).
    bool meta_journaled = false;
    std::uint64_t last_used = 0;  ///< LRU stamp (monotonic use tick).
  };
  /// Parsed journal image of one digest (shard tail staging): what a
  /// replay of the current journal generation says about the digest.
  struct Staged {
    std::string soc_name;
    std::optional<soc::DigestInventory> inventory;
    std::map<EntryKey, Entry> entries;
  };
  /// Per-shard scan cache: how far into the journal this process has
  /// validated, and the staged replay image for every digest seen.
  struct ShardState {
    bool scanned = false;
    bool header_bad = false;  ///< Journal header unusable (corrupt).
    std::uint64_t generation = 0;
    std::uint64_t validated = 0;  ///< Valid journal bytes [0, validated).
    std::map<std::string, Staged> tail;
    bool corrupt_counted = false;  ///< Dedup corrupt_files per journal.
    bool torn_counted = false;     ///< Dedup torn_tails per tail.
  };

  [[nodiscard]] std::string legacy_path(const std::string& digest) const;
  [[nodiscard]] std::string shard_dir(const std::string& shard) const;
  [[nodiscard]] std::string journal_path(const std::string& shard) const;
  [[nodiscard]] std::string snapshot_path(const std::string& digest) const;

  void open_locked(const std::string& digest, const std::string& soc_name);
  void maybe_evict_locked();
  /// Loads one legacy or v4 snapshot file into `store` (merge, later
  /// wins); returns false when the file was corrupt (counted).
  bool load_snapshot_file_locked(const std::string& path,
                                 const std::string& digest, bool v4,
                                 Store& store);
  /// Forgets everything cached about one shard journal (tail staging,
  /// dedup flags, the stores' meta-journaled marks) — called when the
  /// generation changes under us or the journal is reset.
  void reset_shard_locked(const std::string& shard_key, ShardState& shard);
  /// Advances the shard scan cache over `bytes` (a whole journal
  /// file): detects generation changes, stages every newly validated
  /// record into shard.tail, and classifies/counts the tail.
  void absorb_journal_locked(const std::string& shard_key, ShardState& shard,
                             std::string_view bytes);
  /// Parses one checksum-valid journal payload into the shard tail
  /// (malformed payloads count as corruption and are skipped).
  void apply_payload_locked(const std::string& shard_key, ShardState& shard,
                            std::string_view payload, bool count_replayed);
  /// Replays the shard journal under a shared file lock (no-op when
  /// the journal does not exist; I/O errors degrade to corrupt_files).
  void scan_shard_shared_locked(const std::string& shard_key);
  /// Appends `payloads` to one shard journal under an exclusive lock
  /// (validating and truncating any bad tail first), then compacts
  /// when past the threshold.  Returns true when it compacted (the
  /// appended records no longer live in the journal).
  bool append_shard_locked(const std::string& shard_key,
                           const std::vector<std::string>& payloads);
  /// Folds the (fully scanned) journal of `shard_key` into snapshot
  /// files and resets the journal, under `lock` (exclusive).
  void compact_shard_locked(const std::string& shard_key, ShardState& shard,
                            FileLock& lock, CompactionStats& stats);
  /// Merges the staged journal image for `digest` (if any) into
  /// `store` (journal wins over file-loaded content).
  void apply_staged_locked(const std::string& digest, Store& store);
  [[nodiscard]] std::string serialize_store_locked(const std::string& digest,
                                                   const Store& store) const;

  std::string directory_;
  CacheTuning tuning_;
  std::map<std::string, Store> stores_;
  std::map<std::string, ShardState> shards_;
  std::uint64_t use_tick_ = 0;
  mutable std::mutex mutex_;
  mutable long long hits_ = 0;
  mutable long long misses_ = 0;
  long long records_ = 0;
  int corrupt_files_ = 0;
  long long journal_records_ = 0;
  long long journal_bytes_ = 0;
  long long replayed_records_ = 0;
  long long compactions_ = 0;
  long long evictions_ = 0;
  long long torn_tails_ = 0;
};

}  // namespace msoc::plan

#pragma once
// Persistent TAM-optimizer result cache (the msoc-cache-v3 store,
// documented in docs/formats.md; v1/v2 stores are still read).
//
// What is cached: schedule_soc makespans — the expensive, pure part of
// a CombinationCost.  Everything else in Eq. 2 (C_A, C_time, the
// weighted total) is cheap arithmetic over the cached time and is
// recomputed at load, so weights can change between runs without
// invalidating a single entry.
//
// How entries are keyed (all content-addressed, nothing positional):
//   * soc::digest_hex — which SOC (stable under core reordering and
//     renames);
//   * an EntryKey value: TAM width, the effective power budget (0 =
//     unconstrained), a fingerprint of the PackingOptions fields that
//     influence the makespan, and a partition key built from per-core
//     content digests — each wrapper group is the sorted list of its
//     members' digests, groups sorted — so relabeled or reordered
//     cores, and even symmetric partitions over tests_equivalent cores
//     (the paper's A/B pair), share one entry.
//
// Partition keys are power-CONDITIONAL: constrained entries (budget >
// 0) key on the full core_digest, while unconstrained entries key on
// packing_core_digest — the power-stripped description, which is all
// an unconstrained pack can observe.  That makes unconstrained entries
// portable across revisions that only touch power annotations: the
// replan path (plan::FrontierEngine::replan) reuses a baseline store's
// entries after such an ECO edit even though the enclosing SOC digest
// changed.  To support that diff without the baseline .soc file, every
// store persists its SOC's soc::DigestInventory in the file header.
//
// Read/write discipline: lookups see only the SNAPSHOT present when the
// digest was opened; record() lands in an overlay that becomes visible
// on flush().  This keeps parallel sweeps deterministic — which worker
// computes a cell never changes what another worker can observe — at
// the cost of intra-run cross-series sharing.  Corrupt, truncated, or
// wrong-schema cache files are treated as absent (and counted), never
// as errors: the cache must only ever make runs faster, not wronger.

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "msoc/common/units.hpp"
#include "msoc/mswrap/partition.hpp"
#include "msoc/soc/delta.hpp"
#include "msoc/soc/soc.hpp"
#include "msoc/tam/packing.hpp"

namespace msoc::plan {

/// Fingerprint (16 hex chars) of the PackingOptions fields a makespan
/// depends on.  Excluded: assign_wires (wire coloring never moves a
/// test), the borrowed hint pointers (runtime plumbing), and max_power
/// — the effective budget is an explicit EntryKey field, so
/// fingerprinting it too would double-count it.
[[nodiscard]] std::string packing_fingerprint(
    const tam::PackingOptions& options);

/// Canonical cache key of a sharing partition over `cores`: per group
/// the sorted member digests, groups sorted.  `powered` picks the
/// digest flavor — full core_digest (constrained entries) or the
/// power-stripped packing_core_digest (unconstrained entries).
[[nodiscard]] std::string partition_key(
    const std::vector<soc::AnalogCore>& cores,
    const mswrap::Partition& partition, bool powered);

/// Full-digest convenience overload (identical to powered = true, and
/// to every flavor on cores that declare no power).
[[nodiscard]] std::string partition_key(
    const std::vector<soc::AnalogCore>& cores,
    const mswrap::Partition& partition);

class ResultCache {
 public:
  /// Typed entry key inside one digest's store — the four coordinates
  /// a makespan depends on besides the SOC itself.
  struct EntryKey {
    int tam_width = 0;
    double max_power = 0.0;  ///< Effective budget; 0 = unconstrained.
    std::string fingerprint;
    std::string partition;

    friend bool operator<(const EntryKey& a, const EntryKey& b) {
      if (a.tam_width != b.tam_width) return a.tam_width < b.tam_width;
      if (a.max_power != b.max_power) return a.max_power < b.max_power;
      if (a.fingerprint != b.fingerprint) {
        return a.fingerprint < b.fingerprint;
      }
      return a.partition < b.partition;
    }
  };

  /// In-memory cache: empty snapshot, flush() is a no-op.
  ResultCache() = default;

  /// Disk-backed cache rooted at `directory` (created on flush).
  explicit ResultCache(std::string directory);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Loads the snapshot for one SOC digest from
  /// `<directory>/<digest>.json`.  Idempotent and thread-safe
  /// (internally locked), but the file read happens under the lock, so
  /// prefer opening every digest up front before fanning lookups out.
  /// Unreadable or corrupt files load as empty and bump
  /// corrupt_files().
  void open(const std::string& digest, const std::string& soc_name = "");

  /// open() with the SOC in hand: additionally computes and pins the
  /// store's soc::DigestInventory (`digest` must be the SOC's own) so
  /// a flushed store can serve as a replan baseline.
  void open(const std::string& digest, const soc::Soc& soc);

  /// The inventory of an opened store — from the SOC it was opened
  /// with, or from the v3 file header; nullopt for never-opened
  /// digests and legacy v1/v2 files (those cannot seed a replan).
  [[nodiscard]] std::optional<soc::DigestInventory> inventory(
      const std::string& digest) const;

  /// Snapshot lookup; nullopt on miss (or when the digest was never
  /// opened).  `key.max_power` is the EFFECTIVE budget of the pack
  /// (0 = unconstrained; inherit-from-SOC must be resolved by the
  /// caller).  Thread-safe.
  [[nodiscard]] std::optional<Cycles> lookup(const std::string& digest,
                                             const EntryKey& key) const;

  /// Records a computed makespan in the overlay (visible to lookups
  /// only after the next flush; last writer wins on duplicates).
  /// Thread-safe.
  void record(const std::string& digest, const EntryKey& key,
              const std::string& label, Cycles test_time);

  /// Writes snapshot + overlay back to disk (atomic per file) and
  /// merges the overlay into the snapshot.  No-op for in-memory
  /// caches (the overlay still merges, so a subsequent run() in the
  /// same process can hit it).
  void flush();

  [[nodiscard]] bool disk_backed() const noexcept {
    return !directory_.empty();
  }
  [[nodiscard]] const std::string& directory() const noexcept {
    return directory_;
  }

  /// Counters since construction (thread-safe).
  [[nodiscard]] long long hits() const;
  [[nodiscard]] long long misses() const;
  [[nodiscard]] long long records() const;
  [[nodiscard]] int corrupt_files() const;

 private:
  struct Entry {
    Cycles test_time = 0;
    std::string label;  ///< Informational only; not part of the key.
  };
  struct Store {
    std::string soc_name;
    std::optional<soc::DigestInventory> inventory;
    std::map<EntryKey, Entry> snapshot;  ///< Visible to lookup().
    std::map<EntryKey, Entry> overlay;   ///< Pending record()s.
  };

  [[nodiscard]] std::string file_path(const std::string& digest) const;
  void load_store(const std::string& digest, Store& store);

  std::string directory_;
  std::map<std::string, Store> stores_;
  mutable std::mutex mutex_;
  mutable long long hits_ = 0;
  mutable long long misses_ = 0;
  long long records_ = 0;
  int corrupt_files_ = 0;
};

}  // namespace msoc::plan

#pragma once
// Transport-agnostic msoc-rpc-v1 serving layer: the planning daemon's
// brain, separated from its socket loop (src/pland) so tests and
// benches can drive it in-process.
//
// One PlanService owns what a standalone msoc_plan run pays per
// invocation: the built-in benchmark SOCs (parsed once), a bounded
// cache of parsed .soc texts, and — when configured with a cache
// directory — ONE shared ResultCache whose in-memory snapshot/overlay
// is the hot layer over the msoc-cache-v4 store on disk.  handle()
// maps a JSON request envelope to a JSON response envelope
// (docs/formats.md, "msoc-rpc-v1"); planning documents travel inside
// the envelope as escaped strings, byte-identical to the JSON a
// standalone `msoc_plan` with the same flags would write.
//
// Concurrency contract (the "millions of users" shape):
//   * handle() is thread-safe and called concurrently by the server's
//     worker pool.
//   * Identical requests IN FLIGHT coalesce: one evaluation runs, every
//     waiter gets the leader's exact reply bytes (single-flight).
//   * Identical requests REPEATED hit a bounded LRU response memo and
//     return the first evaluation's bytes without planning at all —
//     which is also what keeps replies bit-stable while the shared
//     cache warms up underneath.
//   * Evaluation errors are never memoized; every retry re-plans.

#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "msoc/plan/result_cache.hpp"
#include "msoc/soc/soc.hpp"

namespace msoc::plan {

struct ServiceLimits {
  /// Hard cap on one request's evaluation threads (0 = uncapped).
  /// NOTE: a cap below a client's --jobs changes the informational
  /// "jobs" field of sweep documents vs a standalone run (results
  /// themselves are jobs-invariant).
  int jobs_cap = 0;
  /// Response-memo entries kept (canonical request -> reply bytes).
  std::size_t memo_capacity = 64;
  /// Parsed .soc texts kept (content hash -> Soc).
  std::size_t soc_cache_capacity = 16;
};

struct ServiceStats {
  long long requests = 0;     ///< Envelopes handled, every op.
  long long evaluations = 0;  ///< Planning runs actually executed.
  long long memo_hits = 0;    ///< Replies served from the memo.
  long long coalesced = 0;    ///< Waits on an identical in-flight run.
  long long errors = 0;       ///< ok=false replies.
  long long frontier_requests = 0;
  long long sweep_requests = 0;
  long long plan_requests = 0;
};

class PlanService {
 public:
  /// Empty `cache_dir` = no persistent cache: every evaluated document
  /// is byte-identical to a cacheless standalone run (the golden-diff
  /// contract).  Non-empty: the shared hot cache layered over the v4
  /// store in that directory.
  explicit PlanService(std::string cache_dir = {},
                       ServiceLimits limits = {});

  PlanService(const PlanService&) = delete;
  PlanService& operator=(const PlanService&) = delete;

  /// One request envelope in, one response envelope out.  Never
  /// throws — malformed JSON, unknown ops and planning failures all
  /// become ok=false envelopes.
  [[nodiscard]] std::string handle(std::string_view request_json);

  [[nodiscard]] ServiceStats stats() const;

  /// True once a shutdown op was accepted; the server should drain.
  [[nodiscard]] bool shutdown_requested() const;

  /// The shared cache (nullptr when running cacheless).
  [[nodiscard]] ResultCache* cache() noexcept {
    return cache_.has_value() ? &*cache_ : nullptr;
  }

 private:
  struct Request;
  struct Pending;

  [[nodiscard]] Request parse_request(std::string_view request_json) const;
  [[nodiscard]] std::string canonical_key(const Request& request) const;
  [[nodiscard]] std::string evaluate(const Request& request);
  [[nodiscard]] std::string evaluate_frontier(const Request& request);
  [[nodiscard]] std::string evaluate_sweep(const Request& request);
  [[nodiscard]] std::string evaluate_plan(const Request& request);
  /// By value: a reference into soc_lru_ could be evicted by a
  /// concurrent request while an evaluation still holds it.
  [[nodiscard]] soc::Soc resolve_soc(const Request& request);
  [[nodiscard]] int effective_jobs(int jobs) const;
  [[nodiscard]] std::string stats_reply() const;
  void memo_insert_locked(const std::string& key, const std::string& reply);

  ServiceLimits limits_;
  std::optional<ResultCache> cache_;
  std::map<std::string, soc::Soc> benches_;  ///< Loaded once, immutable.

  mutable std::mutex mutex_;
  /// LRU response memo: front = most recent.  The map's string keys
  /// are canonical request keys; values point into the list.
  std::list<std::pair<std::string, std::string>> memo_lru_;
  std::map<std::string, std::list<std::pair<std::string, std::string>>::
                            iterator>
      memo_;
  std::map<std::string, std::shared_ptr<Pending>> inflight_;
  /// Parsed .soc-text cache, most recent first (linear scan; the
  /// capacity is small).
  std::list<std::pair<std::uint64_t, soc::Soc>> soc_lru_;
  ServiceStats stats_;
  bool shutdown_ = false;
};

}  // namespace msoc::plan

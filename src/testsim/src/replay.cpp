#include "msoc/testsim/replay.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "msoc/wrapper/wrapper_design.hpp"

namespace msoc::testsim {

std::string ReplayReport::summary() const {
  std::ostringstream os;
  os << "replay: " << digital_tests << " digital + " << analog_tests
     << " analog tests, makespan " << simulated_makespan << " cycles, "
     << total_wire_cycles << " wire-cycles, "
     << (clean() ? "no violations" : std::to_string(errors.size()) +
                                         " violation(s)");
  return os.str();
}

Cycles simulate_scan_test(long long scan_in, long long scan_out,
                          long long patterns) {
  if (patterns <= 0) return 0;
  Cycles t = 0;
  // First pattern shifts into empty wrapper chains.
  t += static_cast<Cycles>(scan_in);
  for (long long p = 0; p < patterns; ++p) {
    t += 1;  // capture cycle
    if (p + 1 < patterns) {
      // Next pattern shifts in while this response shifts out.
      t += static_cast<Cycles>(std::max(scan_in, scan_out));
    } else {
      // Last response drains alone.
      t += static_cast<Cycles>(scan_out);
    }
  }
  return t;
}

ReplayReport replay(const soc::Soc& soc, const tam::Schedule& schedule) {
  ReplayReport report;
  const auto fail = [&report](const std::string& message) {
    report.errors.push_back(message);
  };

  // Index cores by name.
  std::map<std::string, const soc::DigitalCore*> digital;
  for (const soc::DigitalCore& c : soc.digital_cores()) digital[c.name] = &c;
  std::map<std::string, const soc::AnalogCore*> analog;
  for (const soc::AnalogCore& c : soc.analog_cores()) analog[c.name] = &c;

  // Every digital core and every analog specification test must be
  // scheduled exactly once.
  std::map<std::string, int> seen;
  for (const tam::ScheduledTest& t : schedule.tests) {
    seen[t.core_name + (t.test_name.empty() ? "" : "." + t.test_name)]++;
  }
  for (const auto& [name, core] : digital) {
    (void)core;
    if (seen[name] != 1) fail("digital core scheduled " +
                              std::to_string(seen[name]) + "x: " + name);
  }
  for (const auto& [name, core] : analog) {
    // Per-core granularity: one entry with an empty test name covers the
    // whole suite.  Per-test granularity: one entry per Table-2 test.
    if (seen.count(name) != 0) {
      if (seen[name] != 1) {
        fail("analog core scheduled " + std::to_string(seen[name]) + "x: " +
             name);
      }
      for (const soc::AnalogTestSpec& test : core->tests) {
        if (seen.count(name + "." + test.name) != 0) {
          fail("analog core " + name +
               " scheduled both whole-suite and per-test");
        }
      }
      continue;
    }
    for (const soc::AnalogTestSpec& test : core->tests) {
      const std::string key = name + "." + test.name;
      if (seen[key] != 1) fail("analog test scheduled " +
                               std::to_string(seen[key]) + "x: " + key);
    }
  }

  // Per-wire occupancy rebuilt from scratch.
  std::map<int, std::vector<std::pair<Cycles, Cycles>>> wire_busy;

  // Analog wrapper groups for serialization re-check.
  std::map<int, std::vector<std::pair<Cycles, Cycles>>> group_busy;

  for (const tam::ScheduledTest& t : schedule.tests) {
    report.simulated_makespan =
        std::max(report.simulated_makespan, t.end());
    report.total_wire_cycles +=
        static_cast<Cycles>(t.width) * t.duration;

    if (t.kind == tam::TestKind::kDigital) {
      ++report.digital_tests;
      const auto it = digital.find(t.core_name);
      if (it == digital.end()) {
        fail("schedule references unknown digital core " + t.core_name);
        continue;
      }
      // Independent duration derivation.
      const wrapper::WrapperDesign design =
          wrapper::design_wrapper(*it->second, t.width);
      const Cycles expected = simulate_scan_test(
          design.scan_in, design.scan_out, it->second->patterns);
      if (expected != t.duration) {
        std::ostringstream os;
        os << "digital duration mismatch for " << t.core_name << " at w="
           << t.width << ": schedule says " << t.duration
           << ", pipeline replay says " << expected;
        fail(os.str());
      }
    } else {
      ++report.analog_tests;
      const auto it = analog.find(t.core_name);
      if (it == analog.end()) {
        fail("schedule references unknown analog core " + t.core_name);
        continue;
      }
      Cycles expected = 0;
      int required_width = 0;
      if (t.test_name.empty()) {
        // Whole-suite rectangle at the core's TAM width.
        expected = it->second->total_cycles();
        required_width = it->second->tam_width();
      } else {
        const soc::AnalogTestSpec* spec = nullptr;
        for (const soc::AnalogTestSpec& test : it->second->tests) {
          if (test.name == t.test_name) {
            spec = &test;
            break;
          }
        }
        if (spec == nullptr) {
          fail("schedule references unknown analog test " + t.core_name +
               "." + t.test_name);
          continue;
        }
        expected = spec->cycles;
        required_width = spec->tam_width;
      }
      if (expected != t.duration) {
        std::ostringstream os;
        os << "analog duration mismatch for " << t.core_name
           << (t.test_name.empty() ? "" : "." + t.test_name)
           << ": schedule says " << t.duration << ", Table-2 says "
           << expected;
        fail(os.str());
      }
      if (t.width < required_width) {
        fail("analog test narrower than its Table-2 requirement: " +
             t.core_name +
             (t.test_name.empty() ? "" : "." + t.test_name));
      }
      if (t.wrapper_group >= 0) {
        group_busy[t.wrapper_group].emplace_back(t.start, t.end());
      }
    }

    for (int wire : t.wires) {
      wire_busy[wire].emplace_back(t.start, t.end());
    }
    if (t.wires.empty() && t.width > 0) {
      fail("test has no wire assignment: " + t.core_name);
    }
  }

  const auto check_intervals =
      [&fail](std::map<int, std::vector<std::pair<Cycles, Cycles>>>& m,
              const std::string& what) {
        for (auto& [key, intervals] : m) {
          std::sort(intervals.begin(), intervals.end());
          for (std::size_t i = 1; i < intervals.size(); ++i) {
            if (intervals[i].first < intervals[i - 1].second) {
              std::ostringstream os;
              os << what << ' ' << key << " double-booked at cycle "
                 << intervals[i].first;
              fail(os.str());
            }
          }
        }
      };
  check_intervals(wire_busy, "wire");
  check_intervals(group_busy, "analog wrapper");

  return report;
}

}  // namespace msoc::testsim

#include "msoc/testsim/scan_sim.hpp"

#include <algorithm>

#include "msoc/common/error.hpp"
#include "msoc/common/rng.hpp"
#include "msoc/testsim/replay.hpp"

namespace msoc::testsim {

namespace {

/// One wrapper chain as a serial shift register:
/// TAM-in -> [input cells][internal scan cells][output cells] -> TAM-out.
struct ChainRegister {
  int input_cells = 0;
  int scan_cells = 0;
  int output_cells = 0;
  std::vector<bool> bits;  ///< Position 0 = nearest TAM-in.

  [[nodiscard]] int length() const {
    return input_cells + scan_cells + output_cells;
  }
  [[nodiscard]] long long scan_in_length() const {
    return input_cells + scan_cells;
  }
  [[nodiscard]] long long scan_out_length() const {
    return scan_cells + output_cells;
  }

  /// One shift cycle; returns the bit that left at TAM-out.
  bool shift(bool in_bit) {
    const bool out = bits.empty() ? false : bits.back();
    for (std::size_t i = bits.size(); i-- > 1;) bits[i] = bits[i - 1];
    if (!bits.empty()) bits[0] = in_bit;
    return out;
  }
};

std::vector<ChainRegister> build_chains(
    const soc::DigitalCore& core, const wrapper::WrapperDesign& design) {
  std::vector<ChainRegister> chains;
  chains.reserve(design.chains.size());
  for (const wrapper::WrapperChain& wc : design.chains) {
    ChainRegister reg;
    reg.input_cells = wc.input_cells;
    reg.output_cells = wc.output_cells;
    long long scan = 0;
    for (int id : wc.scan_chain_ids) {
      scan += core.scan_chain_lengths[static_cast<std::size_t>(id)];
    }
    reg.scan_cells = static_cast<int>(scan);
    reg.bits.assign(static_cast<std::size_t>(reg.length()), false);
    chains.push_back(std::move(reg));
  }
  return chains;
}

CaptureView collect_view(const std::vector<ChainRegister>& chains) {
  CaptureView view;
  for (const ChainRegister& c : chains) {
    for (int i = 0; i < c.input_cells; ++i) {
      view.inputs.push_back(c.bits[static_cast<std::size_t>(i)]);
    }
  }
  for (const ChainRegister& c : chains) {
    for (int i = 0; i < c.scan_cells; ++i) {
      view.scan_state.push_back(
          c.bits[static_cast<std::size_t>(c.input_cells + i)]);
    }
  }
  return view;
}

void apply_capture(std::vector<ChainRegister>& chains,
                   const CaptureResult& result) {
  std::size_t out_idx = 0;
  std::size_t scan_idx = 0;
  for (ChainRegister& c : chains) {
    for (int i = 0; i < c.scan_cells; ++i) {
      const bool bit = scan_idx < result.scan_state.size()
                           ? result.scan_state[scan_idx]
                           : false;
      c.bits[static_cast<std::size_t>(c.input_cells + i)] = bit;
      ++scan_idx;
    }
    for (int i = 0; i < c.output_cells; ++i) {
      const bool bit =
          out_idx < result.outputs.size() ? result.outputs[out_idx] : false;
      c.bits[static_cast<std::size_t>(c.input_cells + c.scan_cells + i)] =
          bit;
      ++out_idx;
    }
  }
}

}  // namespace

CaptureModel transparent_capture() {
  return [](const CaptureView& view) {
    CaptureResult result;
    result.outputs = view.inputs;
    result.scan_state = view.scan_state;
    return result;
  };
}

CaptureModel xor_network_capture() {
  return [](const CaptureView& view) {
    CaptureResult result;
    result.scan_state.reserve(view.scan_state.size());
    bool prev = !view.inputs.empty() && view.inputs.front();
    for (bool bit : view.scan_state) {
      result.scan_state.push_back(bit ^ prev);
      prev = bit;
    }
    // Outputs fold inputs and the first scan cells together.
    const std::size_t n = view.inputs.size();
    result.outputs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const bool scan_bit =
          i < view.scan_state.size() && view.scan_state[i];
      result.outputs.push_back(view.inputs[i] ^ scan_bit);
    }
    return result;
  };
}

std::vector<WrapperPattern> random_patterns(
    const wrapper::WrapperDesign& design, int count, std::uint64_t seed) {
  require(count >= 0, "pattern count must be non-negative");
  Rng rng(seed);
  std::vector<WrapperPattern> patterns;
  patterns.reserve(static_cast<std::size_t>(count));
  for (int p = 0; p < count; ++p) {
    WrapperPattern pattern;
    for (const wrapper::WrapperChain& chain : design.chains) {
      std::vector<bool> stimulus;
      stimulus.reserve(static_cast<std::size_t>(chain.scan_in_length()));
      for (long long i = 0; i < chain.scan_in_length(); ++i) {
        stimulus.push_back(rng.uniform01() < 0.5);
      }
      pattern.per_chain_stimulus.push_back(std::move(stimulus));
    }
    patterns.push_back(std::move(pattern));
  }
  return patterns;
}

ScanSimResult apply_patterns(const soc::DigitalCore& core,
                             const wrapper::WrapperDesign& design,
                             const std::vector<WrapperPattern>& patterns,
                             const CaptureModel& model) {
  require(static_cast<bool>(model), "capture model must be callable");
  std::vector<ChainRegister> chains = build_chains(core, design);
  for (std::size_t c = 0; c < chains.size(); ++c) {
    check_invariant(chains[c].scan_in_length() ==
                        design.chains[c].scan_in_length(),
                    "chain structure mismatch vs wrapper design");
  }

  const long long si = design.scan_in;
  const long long so = design.scan_out;

  ScanSimResult result;

  // Shift phase helper: shifts `cycles` TAM clocks; per chain, stimulus
  // bits are front-padded so the last stimulus bit lands exactly at the
  // chain head on the final cycle; emitted bits are recorded.
  const auto shift_phase =
      [&](long long cycles, const WrapperPattern* stimulus,
          std::vector<std::vector<bool>>* emitted) {
        for (std::size_t c = 0; c < chains.size(); ++c) {
          ChainRegister& chain = chains[c];
          const long long pad =
              cycles - (stimulus != nullptr
                            ? static_cast<long long>(
                                  stimulus->per_chain_stimulus[c].size())
                            : 0);
          check_invariant(pad >= 0, "phase shorter than stimulus");
          for (long long cycle = 0; cycle < cycles; ++cycle) {
            bool in_bit = false;
            if (stimulus != nullptr && cycle >= pad) {
              // Stimulus is listed deepest-cell-first; the deepest bit
              // must enter first.
              in_bit = stimulus->per_chain_stimulus[c]
                           [static_cast<std::size_t>(cycle - pad)];
            }
            const bool out_bit = chain.shift(in_bit);
            if (emitted != nullptr &&
                cycle < chain.scan_out_length()) {
              (*emitted)[c].push_back(out_bit);
            }
          }
        }
        result.cycles_used += static_cast<Cycles>(cycles);
      };

  for (std::size_t p = 0; p < patterns.size(); ++p) {
    const WrapperPattern& pattern = patterns[p];
    require(pattern.per_chain_stimulus.size() == chains.size(),
            "pattern chain count mismatch");
    for (std::size_t c = 0; c < chains.size(); ++c) {
      require(static_cast<long long>(
                  pattern.per_chain_stimulus[c].size()) ==
                  chains[c].scan_in_length(),
              "stimulus length mismatch on a wrapper chain");
    }

    if (p == 0) {
      // First pattern loads into empty chains: si cycles, nothing to read.
      shift_phase(si, &pattern, nullptr);
    }

    // Capture.
    const CaptureView view = collect_view(chains);
    const CaptureResult captured = model(view);
    apply_capture(chains, captured);
    result.cycles_used += 1;

    // Drain this response; overlap with the next pattern's load if any.
    WrapperResponse response;
    response.per_chain_response.assign(chains.size(), {});
    if (p + 1 < patterns.size()) {
      shift_phase(std::max(si, so), &patterns[p + 1],
                  &response.per_chain_response);
    } else {
      shift_phase(so, nullptr, &response.per_chain_response);
    }
    result.responses.push_back(std::move(response));
  }

  // Cross-check against the analytic/pipeline timing model.
  const Cycles expected = simulate_scan_test(
      si, so, static_cast<long long>(patterns.size()));
  check_invariant(result.cycles_used == expected,
                  "bit-level simulation disagrees with the timing model");
  return result;
}

}  // namespace msoc::testsim

#pragma once
// Bit-accurate test-application simulation through a digital core's
// wrapper chains.
//
// The replay layer cross-checks *cycle counts*; this simulator checks the
// *data path*: patterns are shifted bit-by-bit through the wrapper-chain
// structure produced by design_wrapper (input cells -> internal scan
// chains -> output cells), a capture cycle latches the core's response,
// and responses are shifted out overlapped with the next pattern — the
// exact pipeline behind T = (1 + max(si,so)) p + min(si,so).
//
// The core's combinational behaviour is injectable (CaptureModel) so
// tests can use a transparent function and verify end-to-end bit
// transport: what goes in at the TAM must come out where the wrapper
// chain structure says it must.

#include <cstdint>
#include <functional>
#include <vector>

#include "msoc/common/units.hpp"
#include "msoc/soc/core.hpp"
#include "msoc/wrapper/wrapper_design.hpp"

namespace msoc::testsim {

/// Bit state of a core under test, as the capture step sees it.
struct CaptureView {
  std::vector<bool> inputs;      ///< Functional inputs (wrapper in-cells).
  std::vector<bool> scan_state;  ///< All internal scan cells, chain order.
};

/// Response produced by the core in one capture cycle.
struct CaptureResult {
  std::vector<bool> outputs;     ///< Functional outputs (out-cells).
  std::vector<bool> scan_state;  ///< New scan cell contents.
};

/// Combinational core behaviour for simulation purposes.
using CaptureModel = std::function<CaptureResult(const CaptureView&)>;

/// A capture model that copies inputs to outputs (zero-padded/truncated)
/// and leaves scan state unchanged — transparent transport, the identity
/// check used by the data-path tests.
[[nodiscard]] CaptureModel transparent_capture();

/// A capture model that XORs each scan cell with its left neighbour and
/// drives outputs from the first scan cells: a cheap, deterministic
/// stand-in for real combinational logic.
[[nodiscard]] CaptureModel xor_network_capture();

/// One test pattern as applied through the TAM: per wrapper chain, the
/// scan-in bit stream (length = that chain's scan-in length).
struct WrapperPattern {
  std::vector<std::vector<bool>> per_chain_stimulus;
};

/// Response read back: per wrapper chain, the scan-out stream.
struct WrapperResponse {
  std::vector<std::vector<bool>> per_chain_response;
};

/// Generates `count` deterministic pseudo-random patterns shaped for
/// `design` (seeded; reproducible).
[[nodiscard]] std::vector<WrapperPattern> random_patterns(
    const wrapper::WrapperDesign& design, int count, std::uint64_t seed);

/// Result of a full test application.
struct ScanSimResult {
  std::vector<WrapperResponse> responses;  ///< One per applied pattern.
  Cycles cycles_used = 0;                  ///< Total TAM clock cycles.
};

/// Simulates applying `patterns` to `core` through `design`, using
/// `model` as the combinational behaviour.  Shift-out of pattern k
/// overlaps shift-in of pattern k+1 (per-chain, with the longer of the
/// two lengths governing), matching the analytic timing model, which is
/// asserted internally.
[[nodiscard]] ScanSimResult apply_patterns(
    const soc::DigitalCore& core, const wrapper::WrapperDesign& design,
    const std::vector<WrapperPattern>& patterns, const CaptureModel& model);

}  // namespace msoc::testsim

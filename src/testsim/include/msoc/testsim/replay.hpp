#pragma once
// Independent schedule replay.
//
// The packer and the analytic test-time formulas are cross-checked by a
// simulator that re-derives every duration from first principles and
// replays the schedule on a wire-occupancy model:
//
//  * digital tests: a pattern-by-pattern walk of the wrapper-chain
//    pipeline (first shift-in, capture, overlapped shift-out/shift-in,
//    final shift-out) — an independent derivation of
//    T = (1 + max(si,so)) p + min(si,so);
//  * analog tests: the wrapper timing model (framing x samples) and the
//    Table-2 cycle counts;
//  * wires: per-wire interval occupancy rebuilt from scratch.
//
// replay() returns a report; any mismatch against the schedule is an
// error entry, so tests can assert report.clean().

#include <string>
#include <vector>

#include "msoc/soc/soc.hpp"
#include "msoc/tam/schedule.hpp"

namespace msoc::testsim {

struct ReplayReport {
  std::vector<std::string> errors;
  Cycles simulated_makespan = 0;
  Cycles total_wire_cycles = 0;   ///< Sum of width x duration replayed.
  int digital_tests = 0;
  int analog_tests = 0;

  [[nodiscard]] bool clean() const { return errors.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Pattern-by-pattern wrapper-chain pipeline walk (independent of the
/// closed-form used by the wrapper library).
[[nodiscard]] Cycles simulate_scan_test(long long scan_in, long long scan_out,
                                        long long patterns);

/// Replays `schedule` against `soc` and reports every inconsistency.
[[nodiscard]] ReplayReport replay(const soc::Soc& soc,
                                  const tam::Schedule& schedule);

}  // namespace msoc::testsim

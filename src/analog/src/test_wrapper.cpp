#include "msoc/analog/test_wrapper.hpp"

#include <cmath>

#include "msoc/analog/bitstream.hpp"
#include "msoc/common/error.hpp"
#include "msoc/common/math.hpp"
#include "msoc/dsp/butterworth.hpp"

namespace msoc::analog {

AnalogTestWrapper::AnalogTestWrapper(WrapperConfig config)
    : config_(config),
      adc_(config.vref, config.nonideality),
      dac_(config.vref, config.nonideality) {
  require(config_.resolution_bits == 8,
          "this wrapper implementation instantiates 8-bit converters");
  require(config_.tam_width >= 1, "wrapper needs at least one TAM wire");
  require(config_.tam_clock.hz() > 0.0, "TAM clock must be positive");
  require(config_.vref > 0.0, "vref must be positive");
  require(config_.core_oversampling >= 1,
          "core oversampling factor must be >= 1");
}

WrapperTiming AnalogTestWrapper::timing(const TestConfiguration& test) const {
  require(test.sampling_frequency.hz() > 0.0,
          "test sampling frequency must be positive");
  require(test.sample_count > 0, "test needs at least one sample");
  WrapperTiming t;
  t.frames_per_sample =
      frames_per_sample(config_.resolution_bits, config_.tam_width);
  t.divide_ratio = static_cast<int>(
      std::floor(config_.tam_clock.hz() / test.sampling_frequency.hz()));
  require(t.divide_ratio >= 1,
          "sampling frequency exceeds the TAM clock");
  // The serial register must finish loading a sample within one converter
  // period, i.e. ceil(bits/w) TAM cycles <= divide ratio.
  t.io_rate_feasible = t.frames_per_sample <= t.divide_ratio;
  // One extra sample period drains the output register pipeline.
  t.tam_cycles = static_cast<Cycles>(test.sample_count + 1) *
                 static_cast<Cycles>(t.frames_per_sample);
  return t;
}

std::vector<std::uint16_t> AnalogTestWrapper::digitize(
    const dsp::Signal& in) const {
  std::vector<std::uint16_t> codes;
  codes.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    codes.push_back(adc_.convert(in[i] + bias()));
  }
  return codes;
}

dsp::Signal AnalogTestWrapper::reconstruct(
    const std::vector<std::uint16_t>& codes, Hertz fs) const {
  std::vector<double> samples;
  samples.reserve(codes.size());
  for (std::uint16_t code : codes) {
    check_invariant(code < 256, "8-bit code out of range");
    samples.push_back(dac_.convert(static_cast<std::uint8_t>(code)) - bias());
  }
  return dsp::Signal(fs, std::move(samples));
}

std::vector<std::uint16_t> AnalogTestWrapper::run_self_test(
    const std::vector<std::uint16_t>& stimulus_codes, Hertz /*fs*/) const {
  std::vector<std::uint16_t> out;
  out.reserve(stimulus_codes.size());
  for (std::uint16_t code : stimulus_codes) {
    check_invariant(code < 256, "8-bit code out of range");
    const double v = dac_.convert(static_cast<std::uint8_t>(code));
    out.push_back(adc_.convert(v));
  }
  return out;
}

WrappedTestResult AnalogTestWrapper::run_core_test(
    AnalogCoreModel& core, const dsp::MultitoneSpec& stimulus,
    const TestConfiguration& test) const {
  require(test.mode == WrapperMode::kCoreTest,
          "run_core_test requires core-test mode");
  const Hertz fs = test.sampling_frequency;
  const std::size_t n = test.sample_count;
  const auto osf = static_cast<std::size_t>(config_.core_oversampling);
  const Hertz fsim(fs.hz() * static_cast<double>(osf));

  WrappedTestResult result;
  result.timing = timing(test);

  // --- Reference path: pure analog stimulus, no converters. ---
  const dsp::Signal stim_ct =
      dsp::generate_multitone(stimulus, fsim, n * osf);
  const dsp::Signal direct_ct = core.process(stim_ct);

  // Sample both at the converter instants so all three records share fs.
  const auto decimate = [&](const dsp::Signal& s) {
    std::vector<double> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(s[i * osf]);
    }
    return dsp::Signal(fs, std::move(out));
  };
  result.stimulus = decimate(stim_ct);
  result.direct_response = decimate(direct_ct);

  // --- Wrapped path: codes -> DAC -> ZOH -> core -> ADC -> codes. ---
  const dsp::Signal stim_discrete = dsp::generate_multitone(stimulus, fs, n);
  const std::vector<std::uint16_t> in_codes = digitize(stim_discrete);

  // DAC output held for one converter period (zero-order hold at fs),
  // expressed on the oversampled grid the core model runs on.
  std::vector<double> held(n * osf);
  for (std::size_t i = 0; i < n; ++i) {
    const double v =
        dac_.convert(static_cast<std::uint8_t>(in_codes[i])) - bias();
    for (std::size_t k = 0; k < osf; ++k) held[i * osf + k] = v;
  }
  dsp::Signal into_core(fsim, std::move(held));
  // The wrapper's analog buffers (DAC output driver, ADC input driver)
  // band-limit the signal path; this is the dominant systematic error of
  // the wrapped measurement.
  const bool buffered = config_.buffer_bandwidth.hz() > 0.0;
  dsp::BiquadCascade dac_buffer =
      buffered ? dsp::make_lowpass(1, config_.buffer_bandwidth, fsim)
               : dsp::BiquadCascade{};
  dsp::BiquadCascade adc_buffer =
      buffered ? dsp::make_lowpass(1, config_.buffer_bandwidth, fsim)
               : dsp::BiquadCascade{};
  if (buffered) into_core = dac_buffer.process(into_core);
  dsp::Signal core_out = core.process(into_core);
  if (buffered) core_out = adc_buffer.process(core_out);

  // S/H + ADC at the end of each hold period (settled value).
  std::vector<std::uint16_t> out_codes;
  out_codes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = core_out[i * osf + (osf - 1)];
    out_codes.push_back(adc_.convert(v + bias()));
  }
  result.wrapped_response = reconstruct(out_codes, fs);
  return result;
}

}  // namespace msoc::analog

#include "msoc/analog/converter.hpp"

#include <algorithm>
#include <cmath>

#include "msoc/common/error.hpp"

namespace msoc::analog {

ConverterNonideality ConverterNonideality::typical_05um() {
  ConverterNonideality cfg;
  cfg.comparator_offset_sigma_lsb = 0.10;
  cfg.resistor_mismatch_sigma_lsb = 0.05;
  cfg.interstage_gain_error = 0.01;
  return cfg;
}

FlashAdc4::FlashAdc4(double vref, const ConverterNonideality& cfg,
                     Rng& mismatch_rng)
    : vref_(vref) {
  require(vref > 0.0, "vref must be positive");
  const double lsb = vref / 16.0;
  thresholds_.reserve(15);
  for (int i = 1; i <= 15; ++i) {
    double t = static_cast<double>(i) * lsb;
    t += mismatch_rng.gaussian(0.0, cfg.comparator_offset_sigma_lsb * lsb);
    thresholds_.push_back(t);
  }
  // A real flash ladder is monotone by construction; keep the model so.
  std::sort(thresholds_.begin(), thresholds_.end());
}

std::uint8_t FlashAdc4::convert(double v) const {
  // Thermometer decode: count comparators whose threshold is below v.
  const auto it =
      std::upper_bound(thresholds_.begin(), thresholds_.end(), v);
  return static_cast<std::uint8_t>(it - thresholds_.begin());
}

Dac4::Dac4(double vref, const ConverterNonideality& cfg, Rng& mismatch_rng)
    : vref_(vref) {
  require(vref > 0.0, "vref must be positive");
  const double lsb = vref / 16.0;
  levels_.reserve(16);
  for (int code = 0; code < 16; ++code) {
    double v = static_cast<double>(code) * lsb;
    if (code > 0) {
      v += mismatch_rng.gaussian(0.0, cfg.resistor_mismatch_sigma_lsb * lsb);
    }
    levels_.push_back(v);
  }
  std::sort(levels_.begin(), levels_.end());
}

double Dac4::convert(std::uint8_t code) const {
  check_invariant(code < 16, "4-bit DAC code out of range");
  return levels_[code];
}

PipelinedAdc8::PipelinedAdc8(double vref, const ConverterNonideality& cfg)
    : vref_(vref),
      interstage_gain_(16.0 * (1.0 + cfg.interstage_gain_error)),
      msb_([&] {
        Rng rng(cfg.seed);
        return FlashAdc4(vref, cfg, rng);
      }()),
      residue_dac_([&] {
        Rng rng(cfg.seed + 1);
        return Dac4(vref, cfg, rng);
      }()),
      lsb_([&] {
        Rng rng(cfg.seed + 2);
        return FlashAdc4(vref, cfg, rng);
      }()) {}

std::uint8_t PipelinedAdc8::convert(double v) const {
  const double clamped = std::clamp(v, 0.0, std::nextafter(vref_, 0.0));
  const std::uint8_t msb = msb_.convert(clamped);
  const double reconstructed = residue_dac_.convert(msb);
  const double residue =
      std::clamp((clamped - reconstructed) * interstage_gain_, 0.0,
                 std::nextafter(vref_, 0.0));
  const std::uint8_t lsb = lsb_.convert(residue);
  return static_cast<std::uint8_t>((msb << 4U) | lsb);
}

ModularDac8::ModularDac8(double vref, const ConverterNonideality& cfg)
    : vref_(vref),
      msb_([&] {
        Rng rng(cfg.seed + 3);
        return Dac4(vref, cfg, rng);
      }()),
      lsb_([&] {
        Rng rng(cfg.seed + 4);
        return Dac4(vref, cfg, rng);
      }()) {}

double ModularDac8::convert(std::uint8_t code) const {
  const auto msb_code = static_cast<std::uint8_t>(code >> 4U);
  const auto lsb_code = static_cast<std::uint8_t>(code & 0x0FU);
  // Fig. 4b: Vout = V_msb + V_lsb / 16.
  return msb_.convert(msb_code) + lsb_.convert(lsb_code) / 16.0;
}

}  // namespace msoc::analog

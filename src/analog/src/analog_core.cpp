#include "msoc/analog/analog_core.hpp"

#include <algorithm>
#include <cmath>

#include "msoc/common/error.hpp"
#include "msoc/dsp/butterworth.hpp"

namespace msoc::analog {

FilterCore::FilterCore(Params params) : p_(std::move(params)) {
  require(p_.order >= 1, "filter order must be >= 1");
  require(p_.cutoff.hz() > 0.0, "filter cutoff must be positive");
}

dsp::Signal FilterCore::process(const dsp::Signal& in) {
  require(p_.cutoff.hz() < in.sample_rate().hz() / 2.0,
          "stimulus sample rate too low for this core's cutoff");
  // Static nonlinearity first (models the input stage), then the channel
  // filter, then the output offset.
  dsp::Signal shaped = in;
  if (p_.cubic_coefficient != 0.0) {
    for (double& s : shaped.samples()) {
      s += p_.cubic_coefficient * s * s * s;
    }
  }
  dsp::BiquadCascade filter = dsp::make_lowpass(
      p_.order, p_.cutoff, in.sample_rate(), p_.passband_gain);
  dsp::Signal out = filter.process(shaped);
  if (p_.dc_offset_v != 0.0) {
    for (double& s : out.samples()) s += p_.dc_offset_v;
  }
  return out;
}

AmplifierCore::AmplifierCore(Params params) : p_(std::move(params)) {
  require(p_.gain > 0.0, "amplifier gain must be positive");
  require(p_.slew_rate_v_per_us > 0.0, "slew rate must be positive");
  require(p_.rail_v > 0.0, "rail voltage must be positive");
}

dsp::Signal AmplifierCore::process(const dsp::Signal& in) {
  const double dt_us = 1e6 / in.sample_rate().hz();
  const double max_step = p_.slew_rate_v_per_us * dt_us;
  std::vector<double> out(in.size());
  double y = 0.0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double target =
        std::clamp(p_.gain * in[i], -p_.rail_v, p_.rail_v);
    const double step = std::clamp(target - y, -max_step, max_step);
    y += step;
    out[i] = y;
  }
  return dsp::Signal(in.sample_rate(), std::move(out));
}

DownConverterCore::DownConverterCore(Params params) : p_(std::move(params)) {
  require(p_.lo_frequency.hz() > 0.0, "LO frequency must be positive");
  require(p_.output_cutoff.hz() > 0.0, "output cutoff must be positive");
  require(p_.filter_order >= 1, "filter order must be >= 1");
}

dsp::Signal DownConverterCore::process(const dsp::Signal& in) {
  require(p_.lo_frequency.hz() < in.sample_rate().hz() / 2.0,
          "stimulus sample rate too low for the LO");
  std::vector<double> mixed(in.size());
  const double w = 2.0 * 3.14159265358979323846 * p_.lo_frequency.hz() /
                   in.sample_rate().hz();
  for (std::size_t i = 0; i < in.size(); ++i) {
    // 2x gain restores the half-amplitude of the difference term.
    mixed[i] = 2.0 * p_.conversion_gain * in[i] *
               std::cos(w * static_cast<double>(i));
  }
  dsp::Signal product(in.sample_rate(), std::move(mixed));
  dsp::BiquadCascade filter = dsp::make_lowpass(
      p_.filter_order, p_.output_cutoff, in.sample_rate(), 1.0);
  return filter.process(product);
}

std::unique_ptr<AnalogCoreModel> make_core_a_filter() {
  FilterCore::Params p;
  p.name = "core-A (I-Q transmit LPF)";
  p.order = 2;
  p.cutoff = Hertz(61e3);
  p.passband_gain = 1.0;
  return std::make_unique<FilterCore>(std::move(p));
}

}  // namespace msoc::analog

#include "msoc/analog/bitstream.hpp"

#include "msoc/common/error.hpp"
#include "msoc/common/math.hpp"

namespace msoc::analog {

int frames_per_sample(int bits, int width) {
  require(bits >= 1 && bits <= 16, "sample width must be in [1,16] bits");
  require(width >= 1, "TAM width must be >= 1");
  return ceil_div(bits, width);
}

std::vector<TamFrame> serialize_codes(const std::vector<std::uint16_t>& codes,
                                      int bits, int width) {
  const int fps = frames_per_sample(bits, width);
  std::vector<TamFrame> frames;
  frames.reserve(codes.size() * static_cast<std::size_t>(fps));
  for (std::uint16_t code : codes) {
    int bit = 0;
    for (int f = 0; f < fps; ++f) {
      TamFrame frame(static_cast<std::size_t>(width), false);
      for (int wire = 0; wire < width && bit < bits; ++wire, ++bit) {
        frame[static_cast<std::size_t>(wire)] =
            ((code >> static_cast<unsigned>(bit)) & 1U) != 0;
      }
      frames.push_back(std::move(frame));
    }
  }
  return frames;
}

std::vector<std::uint16_t> deserialize_codes(
    const std::vector<TamFrame>& frames, int bits, int width,
    std::size_t count) {
  const int fps = frames_per_sample(bits, width);
  require(frames.size() == count * static_cast<std::size_t>(fps),
          "frame count does not match sample count");
  std::vector<std::uint16_t> codes;
  codes.reserve(count);
  std::size_t frame_idx = 0;
  for (std::size_t s = 0; s < count; ++s) {
    std::uint16_t code = 0;
    int bit = 0;
    for (int f = 0; f < fps; ++f, ++frame_idx) {
      const TamFrame& frame = frames[frame_idx];
      check_invariant(frame.size() == static_cast<std::size_t>(width),
                      "frame width mismatch");
      for (int wire = 0; wire < width && bit < bits; ++wire, ++bit) {
        if (frame[static_cast<std::size_t>(wire)]) {
          code = static_cast<std::uint16_t>(
              code | (1U << static_cast<unsigned>(bit)));
        }
      }
    }
    codes.push_back(code);
  }
  return codes;
}

}  // namespace msoc::analog

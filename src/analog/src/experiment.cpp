#include "msoc/analog/experiment.hpp"

#include <cmath>

#include "msoc/common/error.hpp"
#include "msoc/dsp/multitone.hpp"

namespace msoc::analog {

double CutoffExperimentResult::cutoff_error_percent() const {
  check_invariant(cutoff_direct.hz() > 0.0, "no direct cutoff measured");
  return 100.0 * std::fabs(cutoff_wrapped.hz() - cutoff_direct.hz()) /
         cutoff_direct.hz();
}

CutoffExperimentResult run_cutoff_experiment(
    const CutoffExperimentConfig& config, AnalogCoreModel* core) {
  require(config.tone_frequencies.size() >= 2,
          "cut-off extraction needs at least two tones");
  require(config.sample_count >= 64, "need a reasonable record length");

  std::unique_ptr<AnalogCoreModel> default_core;
  if (core == nullptr) {
    default_core = make_core_a_filter();
    core = default_core.get();
  }

  // Coherent tone placement removes FFT leakage from the comparison, as
  // post-processing of a transient analysis would do via windowing.
  dsp::MultitoneSpec spec;
  for (Hertz f : config.tone_frequencies) {
    spec.tones.push_back(dsp::Tone{f, config.tone_amplitude_v, 0.0});
  }
  spec = dsp::make_coherent(spec, config.sampling_frequency,
                            config.sample_count);

  WrapperConfig wrapper_config;
  wrapper_config.tam_width = config.tam_width;
  wrapper_config.tam_clock = config.system_clock;
  wrapper_config.vref = config.supply_v;
  wrapper_config.nonideality = config.nonideality;

  TestConfiguration test;
  test.sampling_frequency = config.sampling_frequency;
  test.sample_count = config.sample_count;
  test.mode = WrapperMode::kCoreTest;

  const AnalogTestWrapper wrapper(wrapper_config);
  const WrappedTestResult run = wrapper.run_core_test(*core, spec, test);

  CutoffExperimentResult result;
  result.timing = run.timing;
  result.input_spectrum = dsp::compute_spectrum(run.stimulus);
  result.direct_spectrum = dsp::compute_spectrum(run.direct_response);
  result.wrapped_spectrum = dsp::compute_spectrum(run.wrapped_response);

  std::vector<Hertz> tones;
  for (const dsp::Tone& t : spec.tones) tones.push_back(t.frequency);
  result.direct_gains =
      dsp::measure_gains(run.stimulus, run.direct_response, tones);
  result.wrapped_gains =
      dsp::measure_gains(run.stimulus, run.wrapped_response, tones);
  result.cutoff_direct = dsp::extract_cutoff(result.direct_gains);
  result.cutoff_wrapped = dsp::extract_cutoff(result.wrapped_gains);
  return result;
}

}  // namespace msoc::analog

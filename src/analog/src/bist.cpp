#include "msoc/analog/bist.hpp"

#include <algorithm>
#include <cmath>

#include "msoc/analog/bitstream.hpp"
#include "msoc/common/error.hpp"

namespace msoc::analog {

double LinearityResult::max_abs_dnl() const {
  double m = 0.0;
  for (double v : dnl) m = std::max(m, std::fabs(v));
  return m;
}

double LinearityResult::max_abs_inl() const {
  double m = 0.0;
  for (double v : inl) m = std::max(m, std::fabs(v));
  return m;
}

bool LinearityResult::passes(double dnl_limit_lsb,
                             double inl_limit_lsb) const {
  return missing_codes == 0 && max_abs_dnl() <= dnl_limit_lsb &&
         max_abs_inl() <= inl_limit_lsb;
}

LinearityResult adc_ramp_histogram_bist(const PipelinedAdc8& adc,
                                        int samples_per_code) {
  require(samples_per_code >= 4, "need >= 4 samples per code");
  constexpr int kCodes = 256;
  const double vref = adc.vref();
  const long long total_samples =
      static_cast<long long>(kCodes) * samples_per_code;

  // Slow linear ramp covering the full scale; histogram of output codes.
  std::vector<long long> histogram(kCodes, 0);
  for (long long i = 0; i < total_samples; ++i) {
    const double v = vref * (static_cast<double>(i) + 0.5) /
                     static_cast<double>(total_samples);
    ++histogram[adc.convert(v)];
  }

  LinearityResult result;
  // End codes absorb clipping; linearity uses interior transitions.
  const double ideal = static_cast<double>(samples_per_code);
  result.dnl.reserve(kCodes - 2);
  double inl_acc = 0.0;
  result.inl.reserve(kCodes - 2);
  for (int code = 1; code <= kCodes - 2; ++code) {
    const auto idx = static_cast<std::size_t>(code);
    if (histogram[idx] == 0) ++result.missing_codes;
    const double dnl =
        static_cast<double>(histogram[idx]) / ideal - 1.0;
    result.dnl.push_back(dnl);
    inl_acc += dnl;
    result.inl.push_back(inl_acc);
  }
  // Remove the straight-line (endpoint-fit) component from the INL.
  if (!result.inl.empty()) {
    const double slope =
        result.inl.back() / static_cast<double>(result.inl.size());
    for (std::size_t i = 0; i < result.inl.size(); ++i) {
      result.inl[i] -= slope * static_cast<double>(i + 1);
    }
  }
  return result;
}

LinearityResult dac_level_sweep_bist(const ModularDac8& dac) {
  constexpr int kCodes = 256;
  const double lsb = dac.vref() / kCodes;

  std::vector<double> levels(kCodes);
  for (int code = 0; code < kCodes; ++code) {
    levels[static_cast<std::size_t>(code)] =
        dac.convert(static_cast<std::uint8_t>(code));
  }

  LinearityResult result;
  result.dnl.reserve(kCodes - 1);
  result.inl.reserve(kCodes - 1);
  double inl_acc = 0.0;
  for (int code = 1; code < kCodes; ++code) {
    const double step = levels[static_cast<std::size_t>(code)] -
                        levels[static_cast<std::size_t>(code - 1)];
    const double dnl = step / lsb - 1.0;
    result.dnl.push_back(dnl);
    inl_acc += dnl;
    result.inl.push_back(inl_acc);
  }
  if (!result.inl.empty()) {
    const double slope =
        result.inl.back() / static_cast<double>(result.inl.size());
    for (std::size_t i = 0; i < result.inl.size(); ++i) {
      result.inl[i] -= slope * static_cast<double>(i + 1);
    }
  }
  return result;
}

LinearityResult wrapper_loopback_bist(const AnalogTestWrapper& wrapper,
                                      int samples_per_code) {
  require(samples_per_code >= 1, "need >= 1 sample per code");
  constexpr int kCodes = 256;
  // Drive every DAC code repeatedly through the self-test path and
  // histogram the ADC read-back: a combined-pair histogram test.
  std::vector<std::uint16_t> stimulus;
  stimulus.reserve(static_cast<std::size_t>(kCodes) *
                   static_cast<std::size_t>(samples_per_code));
  for (int code = 0; code < kCodes; ++code) {
    for (int s = 0; s < samples_per_code; ++s) {
      stimulus.push_back(static_cast<std::uint16_t>(code));
    }
  }
  const std::vector<std::uint16_t> response =
      wrapper.run_self_test(stimulus, Hertz(1e6));

  std::vector<long long> histogram(kCodes, 0);
  for (std::uint16_t code : response) ++histogram[code];

  LinearityResult result;
  const double ideal = static_cast<double>(samples_per_code);
  double inl_acc = 0.0;
  for (int code = 1; code <= kCodes - 2; ++code) {
    const auto idx = static_cast<std::size_t>(code);
    if (histogram[idx] == 0) ++result.missing_codes;
    const double dnl =
        static_cast<double>(histogram[idx]) / ideal - 1.0;
    result.dnl.push_back(dnl);
    inl_acc += dnl;
    result.inl.push_back(inl_acc);
  }
  if (!result.inl.empty()) {
    const double slope =
        result.inl.back() / static_cast<double>(result.inl.size());
    for (std::size_t i = 0; i < result.inl.size(); ++i) {
      result.inl[i] -= slope * static_cast<double>(i + 1);
    }
  }
  return result;
}

Cycles bist_cycles(int bits, int samples_per_code, int tam_width) {
  require(samples_per_code >= 1, "need >= 1 sample per code");
  const int fps = frames_per_sample(bits, tam_width);
  const auto codes = static_cast<Cycles>(1ULL << static_cast<unsigned>(bits));
  // Stimulus in and response out per sample; the serial paths overlap,
  // but each direction needs its own frames on the shared wires.
  return codes * static_cast<Cycles>(samples_per_code) *
         static_cast<Cycles>(2 * fps);
}

}  // namespace msoc::analog

#pragma once
// Behavioral models of embedded analog cores.
//
// The paper's five analog cores come from a commercial baseband chip we do
// not have; these are behavioral stand-ins (documented in DESIGN.md) whose
// transfer characteristics match the Table-2 bandwidths.  The test-planning
// layers never look inside them — they only consume (TAM width, cycles) —
// but the §5 wrapper-simulation experiment drives them sample by sample.

#include <memory>
#include <string>

#include "msoc/common/units.hpp"
#include "msoc/dsp/signal.hpp"

namespace msoc::analog {

/// A continuous-time analog block, simulated at the sample rate of the
/// stimulus it is given (callers oversample to approximate CT behaviour).
class AnalogCoreModel {
 public:
  virtual ~AnalogCoreModel() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;

  /// Processes a stimulus record; output has the same rate and length.
  [[nodiscard]] virtual dsp::Signal process(const dsp::Signal& in) = 0;
};

/// Butterworth low-pass channel filter (models the I-Q transmit path and
/// the audio CODEC path).  Optional DC offset and mild cubic
/// nonlinearity make distortion/offset tests meaningful.
class FilterCore final : public AnalogCoreModel {
 public:
  struct Params {
    std::string name = "filter";
    int order = 2;
    Hertz cutoff{};
    double passband_gain = 1.0;
    double dc_offset_v = 0.0;
    double cubic_coefficient = 0.0;  ///< y += c*x^3 ahead of the filter.
  };

  explicit FilterCore(Params params);

  [[nodiscard]] const std::string& name() const override { return p_.name; }
  [[nodiscard]] const Params& params() const noexcept { return p_; }
  [[nodiscard]] dsp::Signal process(const dsp::Signal& in) override;

 private:
  Params p_;
};

/// General-purpose amplifier with finite slew rate and rail clipping
/// (models core E; the slew-rate test SR exercises the limit).
class AmplifierCore final : public AnalogCoreModel {
 public:
  struct Params {
    std::string name = "amplifier";
    double gain = 2.0;
    double slew_rate_v_per_us = 10.0;
    double rail_v = 2.0;  ///< Output clips to [-rail, +rail].
  };

  explicit AmplifierCore(Params params);

  [[nodiscard]] const std::string& name() const override { return p_.name; }
  [[nodiscard]] const Params& params() const noexcept { return p_; }
  [[nodiscard]] dsp::Signal process(const dsp::Signal& in) override;

 private:
  Params p_;
};

/// Baseband down-converter: multiplies by a local oscillator and low-pass
/// filters the product (models core D).
class DownConverterCore final : public AnalogCoreModel {
 public:
  struct Params {
    std::string name = "downconverter";
    Hertz lo_frequency{};
    Hertz output_cutoff{};
    int filter_order = 3;
    double conversion_gain = 1.0;
  };

  explicit DownConverterCore(Params params);

  [[nodiscard]] const std::string& name() const override { return p_.name; }
  [[nodiscard]] const Params& params() const noexcept { return p_; }
  [[nodiscard]] dsp::Signal process(const dsp::Signal& in) override;

 private:
  Params p_;
};

/// Behavioral core A of the paper: 2nd-order Butterworth low-pass with a
/// 61 kHz cut-off — the device under test of the §5/Fig. 5 experiment.
[[nodiscard]] std::unique_ptr<AnalogCoreModel> make_core_a_filter();

}  // namespace msoc::analog

#pragma once
// Behavioral analog test wrapper (paper Fig. 1, sharing per Fig. 2).
//
// The wrapper turns an analog core into a virtual digital core:
//
//   TAM -> input register (serial->parallel) -> DAC --analog--> core
//   core --analog--> S/H + ADC -> output register (parallel->serial) -> TAM
//
// It is reconfigurable per test: TAM clock divide ratio, serial/parallel
// conversion ratio and mode (normal / self-test / core-test) are set by
// the test control block.  This model is cycle-faithful on the digital
// side (framing, divide ratios) and behavioral on the analog side
// (converter models from converter.hpp, zero-order-hold reconstruction,
// oversampled core simulation).

#include <cstdint>
#include <memory>
#include <vector>

#include "msoc/analog/analog_core.hpp"
#include "msoc/analog/converter.hpp"
#include "msoc/common/units.hpp"
#include "msoc/dsp/multitone.hpp"
#include "msoc/dsp/signal.hpp"

namespace msoc::analog {

enum class WrapperMode { kNormal, kSelfTest, kCoreTest };

/// Static configuration of one wrapper instantiation.
struct WrapperConfig {
  int resolution_bits = 8;     ///< ADC/DAC resolution (the test chip is 8).
  int tam_width = 1;           ///< TAM wires allocated to this wrapper.
  Hertz tam_clock{50e6};       ///< Digital TAM/system clock (paper: 50 MHz).
  double vref = 4.0;           ///< Single-supply full scale (paper: 4 V).
  int core_oversampling = 8;   ///< CT-approximation factor for the core sim.
  /// First-order bandwidth of the wrapper's analog buffers (DAC output
  /// buffer and ADC driver).  The 0.5 um test chip's buffers are the
  /// dominant systematic error of the wrapped measurement; 0 disables.
  Hertz buffer_bandwidth{200e3};
  ConverterNonideality nonideality = ConverterNonideality::ideal();
};

/// Per-test reconfiguration (chosen by the wrapper's test control block).
struct TestConfiguration {
  Hertz sampling_frequency{};  ///< Converter sample rate for this test.
  std::size_t sample_count = 0;
  WrapperMode mode = WrapperMode::kCoreTest;
};

/// Derived timing of one test through the wrapper.
struct WrapperTiming {
  int frames_per_sample = 0;   ///< TAM cycles to move one sample.
  int divide_ratio = 0;        ///< tam_clock / sampling_frequency (floor).
  Cycles tam_cycles = 0;       ///< Total TAM cycles for the record.
  bool io_rate_feasible = false;  ///< Can wires keep up with the converters?
};

/// Result of running one core test through the wrapper.
struct WrappedTestResult {
  dsp::Signal stimulus;          ///< Ideal analog stimulus (reference).
  dsp::Signal direct_response;   ///< Core response without the wrapper.
  dsp::Signal wrapped_response;  ///< Response through DAC -> core -> ADC.
  WrapperTiming timing;
};

class AnalogTestWrapper {
 public:
  explicit AnalogTestWrapper(WrapperConfig config);

  [[nodiscard]] const WrapperConfig& config() const noexcept {
    return config_;
  }

  /// Computes framing/divide-ratio/cycle-count for a test.
  [[nodiscard]] WrapperTiming timing(const TestConfiguration& test) const;

  /// Quantizes a bipolar analog record into ADC codes (adds the mid-scale
  /// bias first).
  [[nodiscard]] std::vector<std::uint16_t> digitize(
      const dsp::Signal& in) const;

  /// Reconstructs a bipolar analog record from DAC codes at `fs`
  /// (zero-order hold at the converter rate, bias removed).
  [[nodiscard]] dsp::Signal reconstruct(
      const std::vector<std::uint16_t>& codes, Hertz fs) const;

  /// Self-test mode: stimulus codes -> DAC -> ADC -> response codes,
  /// bypassing the core (used to characterize the converter pair).
  [[nodiscard]] std::vector<std::uint16_t> run_self_test(
      const std::vector<std::uint16_t>& stimulus_codes, Hertz fs) const;

  /// Core-test mode: applies a multitone test to `core` both directly
  /// (oversampled, no converters) and through the wrapper, so callers can
  /// compare spectra as in Fig. 5.
  [[nodiscard]] WrappedTestResult run_core_test(
      AnalogCoreModel& core, const dsp::MultitoneSpec& stimulus,
      const TestConfiguration& test) const;

 private:
  [[nodiscard]] double full_scale() const { return config_.vref; }
  [[nodiscard]] double bias() const { return config_.vref / 2.0; }

  WrapperConfig config_;
  PipelinedAdc8 adc_;
  ModularDac8 dac_;
};

}  // namespace msoc::analog

#pragma once
// Built-in self-test of the wrapper's data converters (the paper's §7
// future work: "investigating the cost of testing the data converters in
// the analog test wrappers"; §5 points at histogram/linearity BIST).
//
// Two classical linearity BISTs are modeled:
//  * ADC ramp-histogram test: a slow linear ramp exercises every code;
//    the code histogram yields DNL, whose running sum yields INL.
//  * DAC level sweep: every code's output level is measured (through the
//    wrapper's self-test path the ADC serves as the measuring device);
//    step deviations give DNL/INL.
//
// bist_cycles() prices the self-test in TAM cycles so a planner can
// account for it — e.g. by appending a "self_test" AnalogTestSpec to
// each core sharing a wrapper (the data model supports this directly).

#include <vector>

#include "msoc/analog/converter.hpp"
#include "msoc/analog/test_wrapper.hpp"
#include "msoc/common/units.hpp"

namespace msoc::analog {

/// Linearity metrics in LSB.
struct LinearityResult {
  std::vector<double> dnl;  ///< Per code-transition (size 2^bits - 2).
  std::vector<double> inl;  ///< Per code (running sum of DNL).
  int missing_codes = 0;    ///< Codes never hit by the ramp.

  [[nodiscard]] double max_abs_dnl() const;
  [[nodiscard]] double max_abs_inl() const;

  /// Conventional pass criterion: |DNL| and |INL| below the limits and
  /// no missing codes.
  [[nodiscard]] bool passes(double dnl_limit_lsb = 1.0,
                            double inl_limit_lsb = 2.0) const;
};

/// Ramp-histogram linearity test of the wrapper's ADC.
/// `samples_per_code` controls resolution of the estimate (paper-style
/// BISTs use 16-64).
[[nodiscard]] LinearityResult adc_ramp_histogram_bist(
    const PipelinedAdc8& adc, int samples_per_code = 32);

/// Level-sweep linearity test of the wrapper's DAC.
[[nodiscard]] LinearityResult dac_level_sweep_bist(const ModularDac8& dac);

/// Full wrapper self-test: DAC sweep measured through the ADC (the
/// self-test loopback of Fig. 1).  Reports the combined pair linearity.
[[nodiscard]] LinearityResult wrapper_loopback_bist(
    const AnalogTestWrapper& wrapper, int samples_per_code = 8);

/// TAM cycles needed to run a histogram BIST of `bits` resolution with
/// `samples_per_code` hits per code over `tam_width` wires: every sample
/// is one stimulus word in and one response word out.
[[nodiscard]] Cycles bist_cycles(int bits, int samples_per_code,
                                 int tam_width);

}  // namespace msoc::analog

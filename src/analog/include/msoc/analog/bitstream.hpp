#pragma once
// TAM-side bit-serial framing for the analog test wrapper.
//
// The wrapper's input/output registers are written and read semi-serially
// over w TAM wires (paper §2): an n-bit sample needs ceil(n/w) TAM clock
// cycles.  These helpers perform the exact framing so tests can verify the
// cycle accounting that the planner's analog test times are built on.

#include <cstdint>
#include <vector>

namespace msoc::analog {

/// One TAM clock cycle's worth of bits (one bit per TAM wire).
using TamFrame = std::vector<bool>;

/// Serializes `codes` (each `bits` wide, LSB first) onto `width` wires.
/// The last frame of a sample is zero-padded on unused wires.
[[nodiscard]] std::vector<TamFrame> serialize_codes(
    const std::vector<std::uint16_t>& codes, int bits, int width);

/// Inverse of serialize_codes; `count` is the number of samples encoded.
[[nodiscard]] std::vector<std::uint16_t> deserialize_codes(
    const std::vector<TamFrame>& frames, int bits, int width,
    std::size_t count);

/// TAM cycles needed to move one `bits`-wide sample over `width` wires.
[[nodiscard]] int frames_per_sample(int bits, int width);

}  // namespace msoc::analog

#pragma once
// The §5 wrapper-feasibility experiment (paper Fig. 5).
//
// A cut-off frequency test is applied to analog core A (a 61 kHz
// Butterworth low-pass) twice: once directly (pure analog stimulus and
// response) and once through the analog test wrapper (digital stimulus
// codes -> DAC -> core -> ADC -> digital response codes).  The frequency
// spectra of the three records — applied test, direct response, wrapped
// response — are the three panels of Fig. 5; the extracted cut-off
// frequencies quantify the wrapper's measurement error (the paper's
// HSPICE implementation reads 61 kHz direct vs 58 kHz wrapped, ~5 %).

#include <memory>
#include <vector>

#include "msoc/analog/analog_core.hpp"
#include "msoc/analog/test_wrapper.hpp"
#include "msoc/common/units.hpp"
#include "msoc/dsp/measure.hpp"
#include "msoc/dsp/spectrum.hpp"

namespace msoc::analog {

struct CutoffExperimentConfig {
  Hertz system_clock{50e6};     ///< Paper: 50 MHz TAM/system clock.
  Hertz sampling_frequency{1.7e6};  ///< Paper: 1.7 MHz.
  std::size_t sample_count = 4551;  ///< Paper: 4551 samples.
  double supply_v = 4.0;            ///< Paper: 4 V supply.
  /// Three stimulus tones bracketing the expected cut-off (the paper
  /// "chose an input with only three frequencies").
  std::vector<Hertz> tone_frequencies = {Hertz(30e3), Hertz(61e3),
                                         Hertz(122e3)};
  double tone_amplitude_v = 0.55;   ///< Per-tone amplitude.
  ConverterNonideality nonideality = ConverterNonideality::typical_05um();
  int tam_width = 4;                ///< Core A's f_c test runs at w=4.
};

struct CutoffExperimentResult {
  dsp::Spectrum input_spectrum;    ///< Fig. 5(a): applied test.
  dsp::Spectrum direct_spectrum;   ///< Fig. 5(b): analog response.
  dsp::Spectrum wrapped_spectrum;  ///< Fig. 5(c): wrapped response.
  std::vector<dsp::GainPoint> direct_gains;
  std::vector<dsp::GainPoint> wrapped_gains;
  Hertz cutoff_direct{};
  Hertz cutoff_wrapped{};
  WrapperTiming timing;

  /// |f_c,wrapped - f_c,direct| / f_c,direct * 100.
  [[nodiscard]] double cutoff_error_percent() const;
};

/// Runs the Fig. 5 experiment on `core` (defaults to the paper's core A
/// when `core` is null).
[[nodiscard]] CutoffExperimentResult run_cutoff_experiment(
    const CutoffExperimentConfig& config = {},
    AnalogCoreModel* core = nullptr);

}  // namespace msoc::analog

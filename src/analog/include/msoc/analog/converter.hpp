#pragma once
// Behavioral data-converter models (paper Fig. 4).
//
// The analog test wrapper is built around an 8-bit modular pipelined ADC
// (two 4-bit flash stages + a 4-bit DAC computing the residue) and an
// 8-bit modular voltage-steering DAC (two 4-bit DACs, the LSB one scaled
// by 1/16).  The models here are behavioral equivalents of the paper's
// transistor-level implementation: ideal staircases plus configurable
// non-idealities (comparator offsets, resistor-string mismatch, gain
// error) that reproduce the ~5 % measurement error of the HSPICE demo.
//
// All converters operate single-supply on [0, vref); the wrapper biases
// bipolar core signals to mid-scale.

#include <cstdint>
#include <vector>

#include "msoc/common/rng.hpp"

namespace msoc::analog {

/// Static non-ideality knobs, expressed in LSB of the *4-bit sub-block*
/// they perturb.  Zero everywhere = ideal converter.
struct ConverterNonideality {
  double comparator_offset_sigma_lsb = 0.0;  ///< Flash threshold spread.
  double resistor_mismatch_sigma_lsb = 0.0;  ///< DAC level spread.
  double interstage_gain_error = 0.0;        ///< Residue-amplifier gain error.
  std::uint64_t seed = 0x5EED;               ///< Mismatch draw seed.

  [[nodiscard]] static ConverterNonideality ideal() { return {}; }

  /// Mismatch magnitudes representative of the paper's 0.5 um test chip
  /// (produces roughly 5 % error on the core-A cut-off measurement).
  [[nodiscard]] static ConverterNonideality typical_05um();
};

/// 4-bit flash ADC: 15 comparators against a resistor-ladder reference.
class FlashAdc4 {
 public:
  FlashAdc4(double vref, const ConverterNonideality& cfg, Rng& mismatch_rng);

  /// Converts a voltage in [0, vref) to a 4-bit code.
  [[nodiscard]] std::uint8_t convert(double v) const;

  [[nodiscard]] double vref() const noexcept { return vref_; }
  [[nodiscard]] const std::vector<double>& thresholds() const noexcept {
    return thresholds_;
  }

 private:
  double vref_;
  std::vector<double> thresholds_;  // 15 ascending comparator thresholds.
};

/// 4-bit voltage-steering DAC: resistor-string levels.
class Dac4 {
 public:
  Dac4(double vref, const ConverterNonideality& cfg, Rng& mismatch_rng);

  /// Converts a 4-bit code to its level voltage.
  [[nodiscard]] double convert(std::uint8_t code) const;

  [[nodiscard]] double vref() const noexcept { return vref_; }

 private:
  double vref_;
  std::vector<double> levels_;  // 16 output levels.
};

/// Modular pipelined 8-bit ADC (Fig. 4a): MSB flash -> DAC -> x16 residue
/// -> LSB flash.  With ideal sub-blocks this equals an ideal 8-bit
/// quantizer, which the tests exploit.
class PipelinedAdc8 {
 public:
  explicit PipelinedAdc8(
      double vref,
      const ConverterNonideality& cfg = ConverterNonideality::ideal());

  [[nodiscard]] std::uint8_t convert(double v) const;

  [[nodiscard]] double vref() const noexcept { return vref_; }
  [[nodiscard]] int resolution_bits() const noexcept { return 8; }

  /// Number of comparators in this modular design (2 x 15); an 8-bit flash
  /// would need 255 — the area argument of §5.
  [[nodiscard]] static constexpr int comparator_count() { return 30; }

 private:
  double vref_;
  double interstage_gain_;
  FlashAdc4 msb_;
  Dac4 residue_dac_;
  FlashAdc4 lsb_;
};

/// Modular 8-bit DAC (Fig. 4b): MSB nibble DAC + LSB nibble DAC / 16.
class ModularDac8 {
 public:
  explicit ModularDac8(
      double vref,
      const ConverterNonideality& cfg = ConverterNonideality::ideal());

  [[nodiscard]] double convert(std::uint8_t code) const;

  [[nodiscard]] double vref() const noexcept { return vref_; }
  [[nodiscard]] int resolution_bits() const noexcept { return 8; }

  /// Resistor count of the modular design (2 x 16) vs 256 for a flat
  /// string — the factor-of-8 reduction quoted in §5.
  [[nodiscard]] static constexpr int resistor_count() { return 32; }

 private:
  double vref_;
  Dac4 msb_;
  Dac4 lsb_;
};

}  // namespace msoc::analog

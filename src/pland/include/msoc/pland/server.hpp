#pragma once
// msoc_pland's serving loop: one UnixListener fanning connections out
// over a ThreadPool, every worker funneling requests into ONE shared
// plan::PlanService (the hot cache + single-flight layer lives there;
// this module only moves frames).
//
// Lifecycle is built around a self-pipe so the daemon can stop from
// anywhere: notify_stop() is a one-byte write — async-signal-safe, so
// the SIGTERM handler in tools/msoc_pland.cpp may call it directly —
// and every blocking point (the accept loop, each connection's
// read-wait) polls the pipe's read end alongside its socket.  A stop
// therefore DRAINS rather than aborts: requests already being
// evaluated finish and their replies are sent; only then do the
// connections close and run() return.  The listener is closed and its
// socket file unlinked before the drain, so no new clients slip in.
//
// Backpressure is a plain bound on open connections (max_clients):
// past it, an accepted client gets an ok=false "busy" envelope and an
// immediate close instead of an unbounded queue slot.

#include <atomic>
#include <string>
#include <thread>

#include "msoc/common/net.hpp"
#include "msoc/common/parallel.hpp"
#include "msoc/plan/service.hpp"

namespace msoc::pland {

struct ServerConfig {
  std::string socket_path;
  /// Connection worker threads (<= 0 = hardware concurrency).  Also
  /// the real concurrency bound on evaluations: connections past it
  /// stay accepted but wait for a free worker.
  int threads = 0;
  /// Open connections past which new clients get a busy reply.
  int max_clients = 64;
  /// Shared persistent cache directory; empty serves cacheless (every
  /// reply byte-identical to a cacheless standalone msoc_plan).
  std::string cache_dir;
  plan::ServiceLimits limits;
};

/// Transport-level counters (the planning-level ones live in
/// plan::ServiceStats).
struct ServerStats {
  long long accepted = 0;       ///< Connections handed to a worker.
  long long busy_rejected = 0;  ///< Connections refused at the bound.
  long long frame_errors = 0;   ///< Bad-checksum/truncated/oversized frames.
};

class PlanServer {
 public:
  /// Binds the socket (throwing if a live daemon already owns the
  /// path) and builds the service; serving starts with run()/start().
  explicit PlanServer(ServerConfig config);
  ~PlanServer();

  PlanServer(const PlanServer&) = delete;
  PlanServer& operator=(const PlanServer&) = delete;

  /// Serves on the calling thread until notify_stop(); drains in-flight
  /// requests before returning.
  void run();

  /// run() on a background thread (tests and the throughput bench).
  void start();

  /// Requests a stop.  Async-signal-safe and idempotent.
  void notify_stop() noexcept;

  /// notify_stop() + join the start() thread (no-op without start()).
  void stop_and_join();

  [[nodiscard]] plan::PlanService& service() noexcept { return service_; }
  [[nodiscard]] const std::string& socket_path() const noexcept {
    return config_.socket_path;
  }
  [[nodiscard]] ServerStats stats() const;

  /// Worker threads actually spawned (resolves threads <= 0).
  [[nodiscard]] int thread_count() const noexcept {
    return pool_.thread_count();
  }

 private:
  /// Polls `fd` + the stop pipe; false when the stop fired first.
  [[nodiscard]] bool wait_readable(int fd) const;
  void serve_connection(net::UnixSocket socket);

  ServerConfig config_;
  plan::PlanService service_;
  net::UnixListener listener_;
  ThreadPool pool_;
  std::thread serve_thread_;
  int stop_read_fd_ = -1;
  int stop_write_fd_ = -1;
  std::atomic<int> active_{0};
  std::atomic<long long> accepted_{0};
  std::atomic<long long> busy_rejected_{0};
  std::atomic<long long> frame_errors_{0};
};

}  // namespace msoc::pland

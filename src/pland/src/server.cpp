#include "msoc/pland/server.hpp"

#include <utility>

#include "msoc/common/error.hpp"
#include "msoc/common/json.hpp"

#if !defined(_WIN32)
#include <cerrno>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>
#endif

namespace msoc::pland {

namespace {

/// Transport-level ok=false envelope (planning-level errors are built
/// inside PlanService; these cover frames the service never saw).
std::string transport_error(const std::string& message) {
  return "{\"schema\":\"msoc-rpc-v1\",\"ok\":false,\"error\":\"" +
         json_escape(message) + "\"}";
}

}  // namespace

#if defined(_WIN32)

PlanServer::PlanServer(ServerConfig config)
    : config_(std::move(config)),
      service_(config_.cache_dir, config_.limits),
      listener_(net::UnixListener::bind_and_listen(config_.socket_path)),
      pool_(config_.threads) {
  throw Error("msoc_pland is not supported on this platform");
}

PlanServer::~PlanServer() = default;
void PlanServer::run() {}
void PlanServer::start() {}
void PlanServer::notify_stop() noexcept {}
void PlanServer::stop_and_join() {}
ServerStats PlanServer::stats() const { return {}; }
bool PlanServer::wait_readable(int) const { return false; }
void PlanServer::serve_connection(net::UnixSocket) {}

#else  // POSIX

PlanServer::PlanServer(ServerConfig config)
    : config_(std::move(config)),
      service_(config_.cache_dir, config_.limits),
      listener_(net::UnixListener::bind_and_listen(config_.socket_path)),
      pool_(config_.threads) {
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) throw Error("cannot create the daemon stop pipe");
  for (const int fd : fds) ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  stop_read_fd_ = fds[0];
  stop_write_fd_ = fds[1];
}

PlanServer::~PlanServer() {
  notify_stop();
  if (serve_thread_.joinable()) serve_thread_.join();
  if (stop_read_fd_ >= 0) ::close(stop_read_fd_);
  if (stop_write_fd_ >= 0) ::close(stop_write_fd_);
}

void PlanServer::notify_stop() noexcept {
  if (stop_write_fd_ < 0) return;
  // One byte is enough and never drained, so the pipe stays readable
  // for every poller at once; only ::write — async-signal-safe.
  const char byte = 0;
  [[maybe_unused]] const ssize_t n = ::write(stop_write_fd_, &byte, 1);
}

void PlanServer::stop_and_join() {
  notify_stop();
  if (serve_thread_.joinable()) serve_thread_.join();
}

ServerStats PlanServer::stats() const {
  ServerStats stats;
  stats.accepted = accepted_.load();
  stats.busy_rejected = busy_rejected_.load();
  stats.frame_errors = frame_errors_.load();
  return stats;
}

bool PlanServer::wait_readable(int fd) const {
  pollfd fds[2] = {{fd, POLLIN, 0}, {stop_read_fd_, POLLIN, 0}};
  for (;;) {
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;  // treat a broken poll as a stop; the loop exits
    }
    // Stop wins ties: a drain must not start reading a NEW request
    // that arrived in the same instant.
    if ((fds[1].revents & (POLLIN | POLLERR | POLLHUP)) != 0) return false;
    if ((fds[0].revents & (POLLIN | POLLERR | POLLHUP)) != 0) return true;
  }
}

void PlanServer::serve_connection(net::UnixSocket socket) {
  while (wait_readable(socket.fd())) {
    net::FrameResult frame = socket.recv_frame();
    switch (frame.status) {
      case net::FrameStatus::kClosed:
        return;
      case net::FrameStatus::kOk: {
        const std::string reply = service_.handle(frame.payload);
        socket.send_frame(reply);
        // A shutdown op drains the whole daemon, not just this
        // connection — but only after its own reply went out.
        if (service_.shutdown_requested()) {
          notify_stop();
          return;
        }
        break;
      }
      case net::FrameStatus::kBadChecksum:
        // Payload length was honored, so the stream is still on a
        // frame boundary: reply and keep serving.
        ++frame_errors_;
        socket.send_frame(transport_error(
            net::frame_status_name(frame.status)));
        break;
      case net::FrameStatus::kTruncated:
      case net::FrameStatus::kOversized:
        // The byte stream is unrecoverable; reply if the peer still
        // listens, then hang up.
        ++frame_errors_;
        try {
          socket.send_frame(transport_error(
              net::frame_status_name(frame.status)));
        } catch (const Error&) {
        }
        return;
    }
  }
}

void PlanServer::run() {
  while (wait_readable(listener_.fd())) {
    std::optional<net::UnixSocket> accepted = listener_.accept();
    if (!accepted.has_value()) continue;
    if (active_.load() >= config_.max_clients) {
      ++busy_rejected_;
      try {
        accepted->send_frame(transport_error(
            "daemon busy: " + std::to_string(config_.max_clients) +
            " clients already connected"));
      } catch (const Error&) {
      }
      // The rejected client is usually still sending its request;
      // closing now would reset the connection and destroy the busy
      // envelope before the client reads it.  Drain until the client
      // hangs up (bounded so a stalled peer cannot wedge the accept
      // loop).
      accepted->shutdown_and_drain(/*timeout_ms=*/1000);
      continue;
    }
    ++active_;
    ++accepted_;
    // shared_ptr: std::function must be copyable, UnixSocket is not.
    auto connection =
        std::make_shared<net::UnixSocket>(std::move(*accepted));
    pool_.submit([this, connection] {
      try {
        serve_connection(std::move(*connection));
      } catch (...) {
        // A connection dying (peer vanished mid-reply, etc.) must
        // never take the daemon down.
      }
      --active_;
    });
  }
  // Drain: stop accepting (and free the socket path for a successor),
  // let in-flight requests finish and reply, then join the queue.
  listener_.close_and_unlink();
  pool_.wait();
}

void PlanServer::start() {
  require(!serve_thread_.joinable(), "the server is already running");
  serve_thread_ = std::thread([this] { run(); });
}

#endif  // POSIX

}  // namespace msoc::pland
